package sim

import (
	"fmt"
	"math"

	"peerwindow/internal/des"
	"peerwindow/internal/nodeid"
	"peerwindow/internal/wire"
	"peerwindow/internal/workload"
)

// ChurnConfig drives the §5.1 population dynamics: Poisson arrivals at
// the stationary rate (population / mean lifetime) and departures after
// each node's sampled lifetime.
type ChurnConfig struct {
	// Workload supplies lifetimes, bandwidths and thresholds.
	Workload workload.Config
	// TargetPopulation sets the stationary population the arrival rate
	// maintains.
	TargetPopulation int
	// CrashFraction is the share of departures that crash silently and
	// must be detected by ring probing; the rest announce their leave.
	CrashFraction float64
}

// Validate reports whether the churn configuration is usable.
func (cc ChurnConfig) Validate() error {
	if err := cc.Workload.Validate(); err != nil {
		return err
	}
	if cc.TargetPopulation <= 0 {
		return fmt.Errorf("sim: TargetPopulation = %d", cc.TargetPopulation)
	}
	if cc.CrashFraction < 0 || cc.CrashFraction > 1 {
		return fmt.Errorf("sim: CrashFraction = %g", cc.CrashFraction)
	}
	return nil
}

// Churn runs the arrival/departure process on a cluster.
type Churn struct {
	c   *Cluster
	cfg ChurnConfig

	stopped bool
	arrival des.Handle

	// Counters for the harness.
	JoinsStarted uint64
	JoinsOK      uint64
	JoinsFailed  uint64
	Crashes      uint64
	Leaves       uint64
}

// NewChurn attaches a churn process to a cluster; call Start to begin.
func NewChurn(c *Cluster, cfg ChurnConfig) *Churn {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Churn{c: c, cfg: cfg}
}

// Start schedules the first arrival and arms departures for every node
// currently alive (their lifetimes are sampled now).
func (ch *Churn) Start() {
	for _, sn := range ch.c.Alive() {
		ch.scheduleDeparture(sn, ch.cfg.Workload.SampleLifetime(ch.c.rng))
	}
	ch.scheduleArrival()
}

// Stop halts the process; already scheduled departures still fire. The
// pending arrival event is cancelled, not just flagged, so the engine's
// queue can actually drain once the departures are done — quiescence
// detection (the model checker, RunUntilIdle tests) sees no phantom
// arrival timer.
func (ch *Churn) Stop() {
	ch.stopped = true
	ch.arrival.Cancel()
}

func (ch *Churn) scheduleArrival() {
	if ch.stopped {
		return
	}
	gap := ch.cfg.Workload.ArrivalInterval(ch.c.rng, ch.cfg.TargetPopulation)
	ch.arrival = ch.c.Engine.After(gap, ch.arrive)
}

// arrive creates a node with a sampled profile and joins it through a
// random member.
func (ch *Churn) arrive() {
	if ch.stopped {
		return
	}
	defer ch.scheduleArrival()
	profile := ch.cfg.Workload.SampleProfile(ch.c.rng)
	sn := ch.c.AddNode(profile.Threshold)
	boot := ch.c.RandomJoined(sn)
	if boot == nil {
		ch.c.Bootstrap(sn)
		ch.scheduleDeparture(sn, profile.Lifetime)
		return
	}
	ch.JoinsStarted++
	sn.Node.Join(boot.Node.Self(), func(err error) {
		if err != nil || !sn.alive {
			ch.JoinsFailed++
			ch.c.Kill(sn)
			return
		}
		ch.JoinsOK++
		ch.c.Truth.Join(sn.Node.Self())
	})
	ch.scheduleDeparture(sn, profile.Lifetime)
}

// scheduleDeparture arms the node's death; a CrashFraction of deaths are
// silent.
func (ch *Churn) scheduleDeparture(sn *SimNode, life des.Time) {
	ch.c.Engine.After(life, func() {
		if !sn.alive {
			return
		}
		if ch.c.rng.Float64() < ch.cfg.CrashFraction {
			ch.Crashes++
			ch.c.Kill(sn)
		} else {
			ch.Leaves++
			ch.c.Leave(sn)
		}
	})
}

// SteadyLevel computes the stationary level a node with budget w (bit/s)
// settles at in a population of n nodes with mean lifetime l and m state
// changes per lifetime, assuming eventBits-sized event messages: the
// smallest (strongest) level whose expected maintenance cost fits the
// budget,
//
//	cost(level) = (n / 2^level) · m / l · eventBits  ≤  w.
//
// This is the closed form of the §2 autonomy loop and seeds warm starts;
// the protocol's own shifting then takes over.
func SteadyLevel(n int, meanLifetime des.Time, m, eventBits, w float64, maxLevel int) int {
	if n <= 1 || w <= 0 {
		return 0
	}
	costAtZero := float64(n) * m / meanLifetime.Seconds() * eventBits
	if costAtZero <= w {
		return 0
	}
	l := int(math.Ceil(math.Log2(costAtZero / w)))
	if l < 0 {
		l = 0
	}
	if l > maxLevel {
		l = maxLevel
	}
	return l
}

// EventBits returns the size of a representative event message with the
// given attached-info length — the i of the paper's cost formula.
func EventBits(infoLen int) float64 {
	msg := wire.Message{
		Type:  wire.MsgEvent,
		Event: wire.Event{Kind: wire.EventJoin, Subject: wire.Pointer{Info: make([]byte, infoLen)}},
	}
	return float64(msg.SizeBits())
}

// WarmStart populates the cluster with n nodes in their converged state:
// profiles are sampled from the workload, levels assigned by SteadyLevel,
// peer lists installed from ground truth, and all periodic machinery
// started — equivalent to a long-running system at t=0. m is the assumed
// state changes per lifetime (2 = join+leave).
func (c *Cluster) WarmStart(n int, wl workload.Config, m float64) []*SimNode {
	if err := wl.Validate(); err != nil {
		panic(err)
	}
	eventBits := EventBits(0)
	type prep struct {
		sn    *SimNode
		level int
	}
	preps := make([]prep, n)
	for i := 0; i < n; i++ {
		profile := wl.SampleProfile(c.rng)
		sn := c.AddNode(profile.Threshold)
		level := SteadyLevel(n, wl.EffectiveMeanLifetime(), m, eventBits,
			profile.Threshold, c.cfg.Core.MaxLevel)
		preps[i] = prep{sn: sn, level: level}
		self := sn.Node.Self()
		self.Level = uint8(level)
		c.Truth.Join(self)
	}
	// Top nodes: the strongest level present. Collect them all so each
	// node can receive its own random sample — concentrating every
	// node's top list on the same few pointers would funnel all report
	// and join traffic through them.
	minLevel := 255
	for _, p := range preps {
		if p.level < minLevel {
			minLevel = p.level
		}
	}
	var allTops []wire.Pointer
	c.Truth.ForEach(func(p wire.Pointer) {
		if int(p.Level) == minLevel {
			allTops = append(allTops, p)
		}
	})
	t := c.cfg.Core.TopListSize
	out := make([]*SimNode, n)
	for i, p := range preps {
		self := p.sn.Node.Self()
		eig := nodeid.EigenstringOf(self.ID, p.level)
		peers := c.Truth.InPrefix(eig)
		tops := make([]wire.Pointer, 0, t)
		if len(allTops) <= t {
			tops = append(tops, allTops...)
		} else {
			for _, j := range c.rng.Perm(len(allTops))[:t] {
				tops = append(tops, allTops[j])
			}
		}
		p.sn.Node.Restore(p.level, peers, tops)
		out[i] = p.sn
	}
	return out
}
