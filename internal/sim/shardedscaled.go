package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"peerwindow/internal/des"
	"peerwindow/internal/metrics"
	"peerwindow/internal/nodeid"
	"peerwindow/internal/shard"
	"peerwindow/internal/xrand"
)

// ShardedScaled is the parallel, struct-of-arrays successor of Scaled:
// the same centralized-peer-list methodology (§5), re-architected so a
// one-million-node churn run fits in RAM and the event work of the 256
// identifier-space slices can be spread across shard worker goroutines.
//
// The design problem is that the scaled model's decisions read *global*
// state — prefix population counts and the measured churn rate — which
// a naive partitioning would turn into cross-shard data races whose
// outcome depends on worker scheduling. ShardedScaled makes the global
// state explicit and windowed instead: all shared counts are a frozen
// snapshot that every slice reads during a window, and every membership
// change is a delta queued by the owning shard and applied at the
// single-threaded window barrier. A window spans one conservative
// horizon (min next event + the configured Window lookahead, by default
// one multicast step): remote knowledge in the real system propagates no
// faster than a multicast hop, so reading counts one window stale is the
// physically honest choice — and it makes every decision a pure function
// of (frozen snapshot, slice-local state), independent of how slices are
// grouped into shards or scheduled onto workers. A run with Shards=1
// executes the *identical* algorithm — same windows, same frozen reads —
// so shards=1 and shards=K replay bit-identically for any K.
//
// Event ordering is kept shard-count-invariant by tie-break keys: every
// scheduled event carries (slice index, per-slice counter), so engines
// order same-instant events identically no matter which engine holds
// them (des.AtKey), and flight records merge at barriers in (time, key)
// order no matter which shard produced them.
type ShardedScaled struct {
	cfg    ShardedScaledConfig
	shards []*scaledShard
	slices [sliceCount]*popSlice
	driver *shard.Driver

	// Frozen global snapshot: written only at barriers (and during
	// construction), read freely by all shards during windows.
	pop        *prefixCount
	lvl        *levelPrefixCount
	deepest    int     // deepest level with population, per the snapshot
	frozenRate float64 // churn rate (events/s) as of the last barrier

	// inflight holds undelivered join/leave events, oldest first,
	// merged from all shards in deterministic (time, key) order.
	inflight []shardFlight
	poolRR   int // round-robin return of recycled doneAt buffers

	// churnLog holds per-window join+leave counts inside the trailing
	// rate window — the windowed replacement of Scaled's churnTimes
	// timestamp buffer.
	churnLog []rateSample

	trafficSince des.Time

	// Counters, aggregated from the shards at each barrier.
	Joins, Leaves, Shifts uint64
}

// ShardedScaledConfig parameterises a sharded scaled run.
type ShardedScaledConfig struct {
	ScaledConfig
	// Shards is the number of per-shard engines; a power of two dividing
	// 256 (the fixed slice count). 0 means 1.
	Shards int
	// Workers is the number of goroutines driving the shards; <= 0 means
	// GOMAXPROCS. Worker count never affects results, only wall time.
	Workers int
	// Window is the conservative synchronization horizon — how stale the
	// frozen global snapshot may get before a barrier refreshes it. 0
	// defaults to StepCost (one multicast hop), the propagation delay of
	// membership knowledge in the modelled system.
	Window des.Time
}

// DefaultShardedScaledConfig mirrors DefaultScaledConfig with the given
// shard count.
func DefaultShardedScaledConfig(n int, seed uint64, shards int) ShardedScaledConfig {
	return ShardedScaledConfig{ScaledConfig: DefaultScaledConfig(n, seed), Shards: shards}
}

// rateSample is one barrier's churn count: `count` joins+leaves happened
// in the window ending at `until`.
type rateSample struct {
	until des.Time
	count int32
}

// shardFlight is one undelivered membership event, the sharded analogue
// of flightEvent: seq carries the (slice, counter) tie-break key that
// makes the barrier merge order shard-count-invariant, and doneAt comes
// from a free-list pool instead of a fresh allocation per event.
type shardFlight struct {
	subject nodeid.ID
	at      des.Time
	maxAt   des.Time
	seq     uint64
	doneAt  []des.Time
}

// countDelta is one queued membership change, applied to the frozen
// snapshot at the next barrier. Count updates commute, so deltas need no
// cross-shard ordering.
type countDelta struct {
	id       nodeid.ID
	kind     uint8
	from, to uint8
}

const (
	deltaJoin uint8 = iota
	deltaLeave
	deltaShift
)

// scaledShard is one engine's worth of slices plus the single-writer
// buffers its worker fills during a window and the barrier drains.
type scaledShard struct {
	parent *ShardedScaled
	idx    int
	engine *des.Engine
	slices []*popSlice

	flights               []shardFlight
	deltas                []countDelta
	churn                 int
	joins, leaves, shifts uint64
	doneAtFree            [][]des.Time
}

// takeDoneAt pops a recycled delivery-deadline buffer or allocates one.
func (sh *scaledShard) takeDoneAt(n int) []des.Time {
	if k := len(sh.doneAtFree); k > 0 {
		d := sh.doneAtFree[k-1]
		sh.doneAtFree = sh.doneAtFree[:k-1]
		return d[:n]
	}
	return make([]des.Time, n)
}

// NewShardedScaled builds the simulator and warm-starts the population,
// exactly as NewScaled does — except nodes are dealt to the 256 slices
// (cfg.N/256 each, remainder to the lowest slices) and each slice draws
// from its own label-split RNG stream, so the construction too is
// independent of the shard count.
func NewShardedScaled(cfg ShardedScaledConfig) *ShardedScaled {
	if err := cfg.ScaledConfig.Validate(); err != nil {
		panic(err)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > sliceCount || bits.OnesCount(uint(cfg.Shards)) != 1 {
		panic(fmt.Sprintf("sim: Shards = %d (need a power of two in [1, %d])", cfg.Shards, sliceCount))
	}
	if cfg.Window <= 0 {
		cfg.Window = cfg.StepCost
	}
	s := &ShardedScaled{
		cfg: cfg,
		pop: newPrefixCount(cfg.MaxLevel),
		lvl: newLevelPrefixCount(cfg.MaxLevel),
	}
	perShard := sliceCount / cfg.Shards
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &scaledShard{parent: s, idx: i, engine: des.New()})
	}
	root := xrand.New(cfg.Seed)
	for i := 0; i < sliceCount; i++ {
		sh := s.shards[i/perShard]
		sl := &popSlice{
			shard:    sh,
			idx:      int32(i),
			target:   cfg.N / sliceCount,
			rng:      root.Split(uint64(i)),
			inBits:   make([]float64, cfg.MaxLevel+1),
			outBits:  make([]float64, cfg.MaxLevel+1),
			audience: make([]int32, cfg.MaxLevel+1),
			weights:  make([]float64, cfg.MaxLevel+1),
		}
		if i < cfg.N%sliceCount {
			sl.target++
		}
		s.slices[i] = sl
		sh.slices = append(sh.slices, sl)
	}
	s.populate()
	for _, sl := range s.slices {
		sl := sl
		if sl.target > 0 {
			arrive := func() { s.arrive(sl) }
			sl.arriveFn = arrive
			s.scheduleArrival(sl)
		}
		sl.sweepFn = func() { s.sweepSlice(sl) }
		sl.reapFn = func() { s.reap(sl) }
		s.scheduleSweep(sl)
		s.armDeath(sl)
	}
	s.refreshDeepest()
	engines := make([]shard.Shard, cfg.Shards)
	for i, sh := range s.shards {
		engines[i] = sh.engine
	}
	s.driver = shard.NewDriver(shard.Config{
		Lookahead: cfg.Window,
		Workers:   cfg.Workers,
		Exchange:  s.exchange,
	}, engines...)
	return s
}

// populate warm-starts every slice's share of the population at steady
// levels, mid-life (residual lifetimes), and arms the per-slice death
// timers.
func (s *ShardedScaled) populate() {
	meanLife := s.cfg.Workload.EffectiveMeanLifetime()
	perEvent := s.cfg.EventBits + s.cfg.AckBits
	for _, sl := range s.slices {
		for j := 0; j < sl.target; j++ {
			profile := s.cfg.Workload.SampleProfile(sl.rng)
			id := sliceID(sl.idx, sl.rng)
			level := SteadyLevel(s.cfg.N, meanLife, 2, perEvent, profile.Threshold, s.cfg.MaxLevel)
			slot := sl.alloc()
			sl.put(slot, id, profile.Threshold, level)
			s.pop.Add(id)
			s.lvl.Add(id, level)
			sl.deaths.push(deathEntry{
				at:   des.Time(s.cfg.Workload.SampleResidualLifetime(sl.rng)),
				slot: slot,
			})
		}
	}
}

// scheduleArrival arms the slice's next Poisson arrival. Each slice runs
// an independent process at its share of the global rate; the
// superposition is the same Poisson process the single-engine simulator
// drives globally.
func (s *ShardedScaled) scheduleArrival(sl *popSlice) {
	gap := s.cfg.Workload.ArrivalInterval(sl.rng, sl.target)
	sl.shard.engine.AtKey(sl.shard.engine.Now()+gap, sl.key(), des.EventTag{}, sl.arriveFn)
}

// scheduleSweep arms the slice's next autonomic level sweep.
func (s *ShardedScaled) scheduleSweep(sl *popSlice) {
	sl.shard.engine.AtKey(sl.shard.engine.Now()+s.cfg.SweepInterval, sl.key(), des.EventTag{}, sl.sweepFn)
}

// armDeath keeps exactly one engine timer armed per slice, at the heap's
// minimum departure time.
func (s *ShardedScaled) armDeath(sl *popSlice) {
	if len(sl.deaths) == 0 {
		if sl.deathAt != 0 {
			sl.deathH.Cancel()
			sl.deathAt = 0
		}
		return
	}
	min := sl.deaths[0].at
	if sl.deathAt != 0 && sl.deathAt <= min {
		return
	}
	sl.deathH.Cancel()
	sl.deathH = sl.shard.engine.AtKey(min, sl.key(), des.EventTag{}, sl.reapFn)
	sl.deathAt = min
}

// arrive creates one node per the slice's Poisson process.
func (s *ShardedScaled) arrive(sl *popSlice) {
	s.scheduleArrival(sl)
	profile := s.cfg.Workload.SampleProfile(sl.rng)
	id := sliceID(sl.idx, sl.rng)
	level := s.chooseLevel(profile.Threshold, id)
	slot := sl.alloc()
	sl.put(slot, id, profile.Threshold, level)
	sh := sl.shard
	sh.deltas = append(sh.deltas, countDelta{id: id, kind: deltaJoin, to: uint8(level)})
	sh.joins++
	sh.churn++
	s.record(sl, id, true)
	sl.deaths.push(deathEntry{at: sh.engine.Now() + profile.Lifetime, slot: slot})
	s.armDeath(sl)
}

// reap departs every node whose time has come and re-arms the timer.
func (s *ShardedScaled) reap(sl *popSlice) {
	sl.deathAt = 0
	sh := sl.shard
	now := sh.engine.Now()
	for len(sl.deaths) > 0 && sl.deaths[0].at <= now {
		e := sl.deaths.pop()
		id := sl.ids[e.slot]
		level := sl.level[e.slot]
		sl.release(e.slot)
		sh.deltas = append(sh.deltas, countDelta{id: id, kind: deltaLeave, from: level})
		sh.leaves++
		sh.churn++
		s.record(sl, id, true)
	}
	s.armDeath(sl)
}

// costAtFrozen prices a node's maintenance input cost (bit/s) at a level
// against the frozen snapshot — Scaled.costAt with windowed reads.
func (s *ShardedScaled) costAtFrozen(id nodeid.ID, level int, lambda float64) float64 {
	group := s.pop.Count(id, level)
	frac := float64(group) / float64(maxInt(1, s.pop.Total()))
	return lambda * frac * (s.cfg.EventBits + s.cfg.AckBits)
}

// chooseLevel picks an arriving node's level from the frozen rate and
// counts (Scaled.chooseLevel against the snapshot).
func (s *ShardedScaled) chooseLevel(threshold float64, id nodeid.ID) int {
	lambda := s.frozenRate
	if lambda == 0 {
		lambda = 2 * float64(s.cfg.N) / s.cfg.Workload.EffectiveMeanLifetime().Seconds()
	}
	for l := 0; l <= s.cfg.MaxLevel; l++ {
		if s.costAtFrozen(id, l, lambda) <= threshold {
			return l
		}
	}
	return s.cfg.MaxLevel
}

// sweepSlice re-evaluates every node of one slice with the §2
// hysteresis. Decisions read only the frozen snapshot (Scaled collects
// all moves before applying for the same read-before-write effect), so
// level changes apply to the slice immediately and reach other slices'
// view at the next barrier.
func (s *ShardedScaled) sweepSlice(sl *popSlice) {
	s.scheduleSweep(sl)
	lambda := s.frozenRate
	if lambda == 0 {
		return
	}
	sh := sl.shard
	now := sh.engine.Now()
	cooldown := 2 * s.cfg.SweepInterval
	for slot := range sl.level {
		l := int(sl.level[slot])
		if l == levelFree {
			continue
		}
		if now-sl.lastShift[slot] < cooldown && sl.lastShift[slot] > 0 {
			continue
		}
		id := sl.ids[slot]
		th := sl.threshold[slot]
		cost := s.costAtFrozen(id, l, lambda)
		to := -1
		switch {
		case cost > th*s.cfg.ShiftDownFactor && l < s.cfg.MaxLevel:
			to = l + 1
		case l > 0 && s.costAtFrozen(id, l-1, lambda) <= th*s.cfg.ShiftUpFactor*2:
			// Raise only when the cost at the stronger level would still
			// fit comfortably (see Scaled.sweep).
			if cost < th*s.cfg.ShiftUpFactor {
				to = l - 1
			}
		}
		if to < 0 {
			continue
		}
		sl.level[slot] = uint8(to)
		sl.lastShift[slot] = now
		sh.deltas = append(sh.deltas, countDelta{id: id, kind: deltaShift, from: uint8(l), to: uint8(to)})
		sh.shifts++
		s.record(sl, id, false)
	}
}

// record prices one state change against the frozen snapshot: delivery
// deadlines per level for the error model and per-level traffic for the
// bandwidth figures — Scaled.recordEvent, with three changes. Reads are
// frozen (windowed, not instantaneous). The level loop stops at the
// snapshot's deepest populated level instead of always walking all 21
// (audiences above it are zero, so the tail of doneAt is constant).
// And the doneAt buffer is pooled, not allocated per event.
func (s *ShardedScaled) record(sl *popSlice, subject nodeid.ID, churn bool) {
	sh := sl.shard
	now := sh.engine.Now()
	deep := s.deepest
	aud := sl.audience[:deep+1]
	totalAudience := 0
	for l := 0; l <= deep; l++ {
		a := int32(s.lvl.Audience(subject, l))
		aud[l] = a
		totalAudience += int(a)
	}
	sTot := stepsFor(totalAudience)
	var doneAt []des.Time
	if churn {
		doneAt = sh.takeDoneAt(s.cfg.MaxLevel + 1)
	}
	cum := 0
	w := sl.weights[:deep+1]
	var weightSum float64
	for l := 0; l <= deep; l++ {
		cum += int(aud[l])
		steps := stepsFor(cum)
		if doneAt != nil {
			doneAt[l] = now + des.Time(steps)*s.cfg.StepCost
		}
		w[l] = 0
		if aud[l] > 0 {
			wt := float64(aud[l]) * float64(sTot-steps+1)
			if wt < 0 {
				wt = 0
			}
			w[l] = wt
			weightSum += wt
			sl.inBits[l] += float64(aud[l]) * (s.cfg.EventBits + s.cfg.AckBits)
			sl.outBits[l] += float64(aud[l]) * s.cfg.AckBits
		}
	}
	if weightSum > 0 && totalAudience > 1 {
		totalMsgs := float64(totalAudience - 1)
		for l := 0; l <= deep; l++ {
			if w[l] > 0 {
				share := w[l] / weightSum * totalMsgs
				sl.outBits[l] += share * s.cfg.EventBits
				sl.inBits[l] += share * s.cfg.AckBits
			}
		}
	}
	if doneAt != nil {
		last := doneAt[deep]
		for l := deep + 1; l <= s.cfg.MaxLevel; l++ {
			doneAt[l] = last
		}
		sh.flights = append(sh.flights, shardFlight{
			subject: subject, at: now, maxAt: last, seq: sl.key(), doneAt: doneAt,
		})
	}
}

// exchange is the window barrier: single-threaded between windows, it
// applies every shard's queued deltas to the snapshot, merges the new
// flights in (time, key) order, refreshes the frozen churn rate, and
// prunes delivered flights. The horizon sequence it runs at is itself
// shard-count-invariant (min next event + Window, both global), so the
// snapshot every window reads is too.
func (s *ShardedScaled) exchange(h des.Time) {
	churn := 0
	newStart := len(s.inflight)
	for _, sh := range s.shards {
		for i := range sh.deltas {
			d := &sh.deltas[i]
			switch d.kind {
			case deltaJoin:
				s.pop.Add(d.id)
				s.lvl.Add(d.id, int(d.to))
			case deltaLeave:
				s.pop.Remove(d.id)
				s.lvl.Remove(d.id, int(d.from))
			case deltaShift:
				s.lvl.Remove(d.id, int(d.from))
				s.lvl.Add(d.id, int(d.to))
			}
		}
		sh.deltas = sh.deltas[:0]
		s.inflight = append(s.inflight, sh.flights...)
		for i := range sh.flights {
			sh.flights[i].doneAt = nil
		}
		sh.flights = sh.flights[:0]
		churn += sh.churn
		sh.churn = 0
		s.Joins += sh.joins
		sh.joins = 0
		s.Leaves += sh.leaves
		sh.leaves = 0
		s.Shifts += sh.shifts
		sh.shifts = 0
	}
	if batch := s.inflight[newStart:]; len(batch) > 1 {
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].at != batch[j].at {
				return batch[i].at < batch[j].at
			}
			return batch[i].seq < batch[j].seq
		})
	}
	s.recordRate(h, churn)
	s.refreshDeepest()
	s.pruneInflight(h)
}

// rateWindow is the trailing window the churn rate is measured over,
// matching Scaled.rateOf.
const rateWindow = 5 * des.Minute

// recordRate folds one window's churn count into the trailing-rate log
// and refreezes the rate, window-granular where Scaled is per-event —
// windows (default 1.5 s) are far smaller than the 5-minute rate window.
func (s *ShardedScaled) recordRate(h des.Time, churn int) {
	s.churnLog = append(s.churnLog, rateSample{until: h, count: int32(churn)})
	cut := 0
	for cut < len(s.churnLog) && s.churnLog[cut].until <= h-rateWindow {
		cut++
	}
	if cut > 0 {
		n := copy(s.churnLog, s.churnLog[cut:])
		s.churnLog = s.churnLog[:n]
	}
	events := 0
	for _, r := range s.churnLog {
		events += int(r.count)
	}
	elapsed := rateWindow
	if h < rateWindow {
		elapsed = h + des.Second
	}
	s.frozenRate = float64(events) / elapsed.Seconds()
}

// refreshDeepest recomputes the deepest populated level of the snapshot.
func (s *ShardedScaled) refreshDeepest() {
	deep := 0
	for l := s.cfg.MaxLevel; l >= 0; l-- {
		if s.lvl.LevelCount(l) > 0 {
			deep = l
			break
		}
	}
	s.deepest = deep
}

// pruneInflight drops fully delivered flights from the front and
// recycles their doneAt buffers to the shards round-robin (pool
// placement affects allocation only, never results).
func (s *ShardedScaled) pruneInflight(now des.Time) {
	cut := 0
	for cut < len(s.inflight) && s.inflight[cut].maxAt <= now {
		sh := s.shards[s.poolRR%len(s.shards)]
		s.poolRR++
		sh.doneAtFree = append(sh.doneAtFree, s.inflight[cut].doneAt)
		s.inflight[cut].doneAt = nil
		cut++
	}
	if cut == 0 {
		return
	}
	n := copy(s.inflight, s.inflight[cut:])
	for i := n; i < len(s.inflight); i++ {
		s.inflight[i] = shardFlight{}
	}
	s.inflight = s.inflight[:n]
}

// Now returns the current virtual time (all shard clocks agree between
// runs).
func (s *ShardedScaled) Now() des.Time { return s.shards[0].engine.Now() }

// Run advances virtual time by d across all shards.
func (s *ShardedScaled) Run(d des.Time) { s.driver.Run(s.Now() + d) }

// Population returns the current live population.
func (s *ShardedScaled) Population() int { return s.pop.Total() }

// EventsExecuted returns the total engine events fired across all
// shards — a shard-count-invariant count (arrivals, death-timer firings
// and sweeps are all per-slice).
func (s *ShardedScaled) EventsExecuted() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.engine.Executed()
	}
	return n
}

// forEachNode visits live nodes in canonical (slice, slot) order until
// fn returns false.
func (s *ShardedScaled) forEachNode(fn func(sl *popSlice, slot int) bool) {
	for _, sl := range s.slices {
		for slot := range sl.level {
			if sl.level[slot] == levelFree {
				continue
			}
			if !fn(sl, slot) {
				return
			}
		}
	}
}

// LevelCounts returns the population per level (figure 5 / 9 / 11).
func (s *ShardedScaled) LevelCounts() []int {
	out := make([]int, s.cfg.MaxLevel+1)
	for l := range out {
		out[l] = s.lvl.LevelCount(l)
	}
	last := len(out) - 1
	for last > 0 && out[last] == 0 {
		last--
	}
	return out[:last+1]
}

// PeerListSizes returns per-level min/mean/max correct peer-list sizes
// over a sample of nodes (figure 6), sampled in (slice, slot) order.
func (s *ShardedScaled) PeerListSizes(sample int) []metrics.Agg {
	aggs := make([]metrics.Agg, s.cfg.MaxLevel+1)
	i := 0
	s.forEachNode(func(sl *popSlice, slot int) bool {
		if sample > 0 && i >= sample {
			return false
		}
		i++
		l := int(sl.level[slot])
		size := s.pop.Count(sl.ids[slot], l) - 1
		aggs[l].Add(float64(size))
		return true
	})
	return aggs
}

// ErrorRates samples nodes and returns per-level mean peer-list error
// rates at the current instant (figures 7 / 10 / 12) — Scaled.ErrorRates
// over the SoA storage.
func (s *ShardedScaled) ErrorRates(sample int) []metrics.Agg {
	now := s.Now()
	s.pruneInflight(now)
	aggs := make([]metrics.Agg, s.cfg.MaxLevel+1)
	i := 0
	s.forEachNode(func(sl *popSlice, slot int) bool {
		if sample > 0 && i >= sample {
			return false
		}
		i++
		l := int(sl.level[slot])
		eig := nodeid.EigenstringOf(sl.ids[slot], l)
		errs := 0
		for fi := range s.inflight {
			fe := &s.inflight[fi]
			if fe.doneAt[l] > now && eig.Contains(fe.subject) {
				errs++
			}
		}
		size := s.pop.Count(sl.ids[slot], l) - 1
		if size > 0 {
			aggs[l].Add(float64(errs) / float64(size))
		}
		return true
	})
	return aggs
}

// Bandwidth returns per-level mean input and output rates in bit/s since
// the last ResetTraffic (figure 8). Slice accumulators are summed in
// slice order, keeping the float result shard-count-invariant.
func (s *ShardedScaled) Bandwidth() (in, out []metrics.Agg) {
	elapsed := (s.Now() - s.trafficSince).Seconds()
	if elapsed <= 0 {
		elapsed = 1
	}
	in = make([]metrics.Agg, s.cfg.MaxLevel+1)
	out = make([]metrics.Agg, s.cfg.MaxLevel+1)
	for l := 0; l <= s.cfg.MaxLevel; l++ {
		pop := s.lvl.LevelCount(l)
		if pop == 0 {
			continue
		}
		var ib, ob float64
		for _, sl := range s.slices {
			ib += sl.inBits[l]
			ob += sl.outBits[l]
		}
		in[l].Add(ib / elapsed / float64(pop))
		out[l].Add(ob / elapsed / float64(pop))
	}
	return in, out
}

// ResetTraffic zeroes the per-level traffic accumulators; measurement
// windows call it at their start.
func (s *ShardedScaled) ResetTraffic() {
	for _, sl := range s.slices {
		for l := range sl.inBits {
			sl.inBits[l] = 0
			sl.outBits[l] = 0
		}
	}
	s.trafficSince = s.Now()
}

// Digest hashes the complete simulation state — every live node in
// (slice, slot) order, the level census, counters, in-flight events and
// the frozen rate — into one 64-bit value. Two runs from the same seed
// must produce the same digest regardless of Shards and Workers; the CI
// bench-smoke job and the determinism tests compare exactly this.
func (s *ShardedScaled) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(s.pop.Total()))
	for l := 0; l <= s.cfg.MaxLevel; l++ {
		mix(uint64(s.lvl.LevelCount(l)))
	}
	for _, sl := range s.slices {
		mix(uint64(sl.live))
		for slot := range sl.level {
			if sl.level[slot] == levelFree {
				continue
			}
			mix(sl.ids[slot].Hi)
			mix(sl.ids[slot].Lo)
			mix(uint64(sl.level[slot]))
			mix(math.Float64bits(sl.threshold[slot]))
			mix(uint64(sl.lastShift[slot]))
		}
	}
	mix(s.Joins)
	mix(s.Leaves)
	mix(s.Shifts)
	mix(s.EventsExecuted())
	mix(math.Float64bits(s.frozenRate))
	mix(uint64(len(s.inflight)))
	for i := range s.inflight {
		fe := &s.inflight[i]
		mix(fe.subject.Hi)
		mix(fe.subject.Lo)
		mix(uint64(fe.at))
		mix(uint64(fe.maxAt))
		mix(fe.seq)
	}
	mix(uint64(s.Now()))
	return h
}

// MemoryFootprint returns the bytes held by the SoA node storage and the
// death heaps — the per-node state a memory budget is measured against.
func (s *ShardedScaled) MemoryFootprint() (bytes uint64, nodes int) {
	for _, sl := range s.slices {
		bytes += uint64(cap(sl.ids))*16 +
			uint64(cap(sl.threshold))*8 +
			uint64(cap(sl.level)) +
			uint64(cap(sl.lastShift))*8 +
			uint64(cap(sl.free))*4 +
			uint64(cap(sl.deaths))*16
		nodes += sl.live
	}
	return bytes, nodes
}
