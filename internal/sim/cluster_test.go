package sim

import (
	"testing"

	"peerwindow/internal/core"
	"peerwindow/internal/des"
)

func smallCluster(t testing.TB, n int, seed uint64) *Cluster {
	t.Helper()
	cfg := ClusterConfig{Core: core.DefaultConfig(), Seed: seed}
	// High thresholds keep everyone at level 0 for the basic checks.
	c := NewCluster(cfg)
	first := c.AddNode(1e9)
	c.Bootstrap(first)
	for i := 1; i < n; i++ {
		sn := c.AddNode(1e9)
		boot := c.RandomJoined(sn)
		if err := c.Join(sn, boot, des.Hour); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		// Let each join's multicast finish so peer-list snapshots taken
		// by later joiners are complete; concurrent-churn behaviour is
		// covered by the dedicated churn tests.
		c.Run(30 * des.Second)
	}
	return c
}

func TestJoinPropagatesToEveryone(t *testing.T) {
	c := smallCluster(t, 20, 1)
	c.Run(2 * des.Minute)
	for i, sn := range c.Alive() {
		errs := c.Audit(sn)
		if errs.Total() != 0 {
			t.Fatalf("node %d peer list has %d absent, %d stale (of %d correct)",
				i, errs.Absent, errs.Stale, errs.Correct)
		}
		if got := sn.Node.Peers().Len(); got != 19 {
			t.Fatalf("node %d has %d peers, want 19", i, got)
		}
	}
}

func TestCrashDetectedAndMulticast(t *testing.T) {
	c := smallCluster(t, 15, 2)
	c.Run(time2())
	victim := c.Alive()[7]
	c.Kill(victim)
	// Probe interval 30s + timeout + multicast: give it a few minutes.
	c.Run(5 * des.Minute)
	for i, sn := range c.Alive() {
		errs := c.Audit(sn)
		if errs.Stale != 0 {
			t.Fatalf("node %d still has %d stale pointers after crash", i, errs.Stale)
		}
		if errs.Absent != 0 {
			t.Fatalf("node %d lost %d live pointers", i, errs.Absent)
		}
	}
}

func time2() des.Time { return 2 * des.Minute }

func TestVoluntaryLeavePropagates(t *testing.T) {
	c := smallCluster(t, 12, 3)
	c.Run(time2())
	leaver := c.Alive()[3]
	c.Leave(leaver)
	c.Run(2 * des.Minute)
	for i, sn := range c.Alive() {
		if errs := c.Audit(sn); errs.Total() != 0 {
			t.Fatalf("node %d: %+v after voluntary leave", i, errs)
		}
	}
}
