package sim

import (
	"peerwindow/internal/des"
	"peerwindow/internal/nodeid"
	"peerwindow/internal/xrand"
)

// This file holds the struct-of-arrays node storage of the sharded
// scaled simulator (shardedscaled.go). The legacy Scaled keeps a
// map[nodeid.ID]*scaledNode — two pointers, a map bucket and a 56-byte
// heap object per node, all of it scanned by the GC every cycle. At one
// million nodes that layout is the bottleneck: the profile of a 100k run
// shows ~30% of cycles in GC write barriers and object scanning alone.
// Here a node is a slot index into parallel arrays (id, threshold,
// level, last-shift time) owned by one of 256 fixed identifier-space
// slices; departures push the slot onto a free list and arrivals pop it
// back, so the arrays never shrink, never move, and hold zero pointers —
// the GC cost of a million nodes is a handful of slab headers.

// sliceCount is the fixed number of identifier-space slices: nodes are
// partitioned by the top 8 bits of their ID. Slices — not shards — are
// the unit every per-partition decision is keyed by (RNG streams,
// arrival processes, event tie-break keys), so regrouping slices into a
// different shard count K (any power of two dividing 256) cannot change
// any decision: shards=1 and shards=256 replay bit-identically.
const sliceCount = 256

// levelFree marks a free slot in popSlice.level.
const levelFree = 0xFF

// deathEntry is one scheduled departure: the slot dies at `at`. A slot
// is freed only by its death entry, so entry and occupant can never go
// stale relative to each other.
type deathEntry struct {
	at   des.Time
	slot int32
}

// deathHeap is a binary min-heap of departures ordered by time. Keeping
// one heap plus a single armed engine timer per slice — instead of one
// engine event per node — is what removes a million live closures from
// the engine slab.
type deathHeap []deathEntry

func (h *deathHeap) push(e deathEntry) {
	*h = append(*h, e)
	b := *h
	i := len(b) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessDeath(b[i], b[p]) {
			break
		}
		b[i], b[p] = b[p], b[i]
		i = p
	}
}

func (h *deathHeap) pop() deathEntry {
	b := *h
	top := b[0]
	n := len(b) - 1
	b[0] = b[n]
	b = b[:n]
	*h = b
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && lessDeath(b[c+1], b[c]) {
			c++
		}
		if !lessDeath(b[c], b[i]) {
			break
		}
		b[i], b[c] = b[c], b[i]
		i = c
	}
	return top
}

// lessDeath breaks time ties by slot so the pop order is a pure function
// of heap content, not insertion history.
func lessDeath(a, b deathEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.slot < b.slot
}

// popSlice is one fixed 1/256th of the identifier space: the SoA node
// arrays plus everything that slice decides on its own — its RNG stream,
// its share of the Poisson arrival process, its departure heap, its
// sweep, its event tie-break counter and its traffic accumulators. All
// mutation happens on the owning shard's worker; everything global the
// slice reads (prefix counts, churn rate) is frozen for the duration of
// a window.
type popSlice struct {
	shard  *scaledShard
	idx    int32
	target int // stationary population share of this slice
	rng    *xrand.Source
	seq    uint32 // per-slice event counter; feeds tie-break keys

	// Node state, indexed by slot. level holds levelFree for free slots.
	ids       []nodeid.ID
	threshold []float64
	level     []uint8
	lastShift []des.Time
	free      []int32
	live      int

	deaths  deathHeap
	deathH  des.Handle
	deathAt des.Time // instant the armed death timer fires at; 0 = unarmed

	// Pre-bound event closures, allocated once per slice instead of once
	// per scheduled event.
	arriveFn func()
	sweepFn  func()
	reapFn   func()

	// Per-level traffic (bits) attributed to events whose subject lives
	// in this slice; summed across slices in slice order at read time so
	// float accumulation order is shard-count-invariant.
	inBits, outBits []float64

	// Scratch for the event cost model (see ShardedScaled.record).
	audience []int32
	weights  []float64
}

// key returns the next shard-invariant event tie-break key for this
// slice: (slice index, per-slice counter). Two events from different
// slices never collide; two from the same slice are ordered by issue
// order — both orderings independent of how slices are grouped into
// shards.
func (sl *popSlice) key() uint64 {
	k := uint64(sl.idx)<<32 | uint64(sl.seq)
	sl.seq++
	return k
}

// alloc returns a free slot, growing the arrays when the free list is
// empty.
func (sl *popSlice) alloc() int32 {
	if n := len(sl.free); n > 0 {
		s := sl.free[n-1]
		sl.free = sl.free[:n-1]
		return s
	}
	sl.ids = append(sl.ids, nodeid.ID{})
	sl.threshold = append(sl.threshold, 0)
	sl.level = append(sl.level, levelFree)
	sl.lastShift = append(sl.lastShift, 0)
	return int32(len(sl.ids) - 1)
}

// put fills a slot with a new node.
func (sl *popSlice) put(slot int32, id nodeid.ID, threshold float64, level int) {
	sl.ids[slot] = id
	sl.threshold[slot] = threshold
	sl.level[slot] = uint8(level)
	sl.lastShift[slot] = 0
	sl.live++
}

// release frees a slot after departure.
func (sl *popSlice) release(slot int32) {
	sl.level[slot] = levelFree
	sl.free = append(sl.free, slot)
	sl.live--
}

// sliceOf returns the identifier-space slice an ID belongs to.
func sliceOf(id nodeid.ID) int { return int(id.Hi >> 56) }

// sliceID draws an identifier inside slice idx: the top 8 bits are the
// slice index, the rest uniform.
func sliceID(idx int32, rng *xrand.Source) nodeid.ID {
	return nodeid.ID{
		Hi: uint64(idx)<<56 | rng.Uint64()>>8,
		Lo: rng.Uint64(),
	}
}
