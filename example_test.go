package peerwindow_test

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"peerwindow"
)

// Example shows the minimal lifecycle: build an overlay, spawn peers,
// attach info, and select partners from a window.
func Example() {
	opts := peerwindow.Defaults()
	opts.Dilation = 200 // compress time hard for the example
	opts.Budget = 1e6
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		panic(err)
	}
	defer ov.Close()

	alice, err := ov.Spawn("alice")
	if err != nil {
		panic(err)
	}
	if _, err := ov.Spawn("bob", peerwindow.WithInfo([]byte("role=archive"))); err != nil {
		panic(err)
	}
	ov.Settle(2 * time.Minute)

	archives := alice.Window().InfoContains("role=archive")
	fmt.Println("archive peers found:", len(archives))
	// Output: archive peers found: 1
}

// ExampleWindow_Strongest demonstrates the §3 selection helper: smaller
// level values mark stronger (and statistically longer-lived) peers.
func ExampleWindow_Strongest() {
	w := peerwindow.Window{
		{ID: "deep", Level: 5},
		{ID: "top", Level: 0},
		{ID: "mid", Level: 2},
	}
	for _, p := range w.Strongest(2) {
		fmt.Println(p.ID, p.Level)
	}
	// Output:
	// top 0
	// mid 2
}

// ExampleWindow_ByInfo filters a window by application-attached info.
func ExampleWindow_ByInfo() {
	w := peerwindow.Window{
		{ID: "a", Info: []byte("os=linux;disk=2T")},
		{ID: "b", Info: []byte("os=plan9")},
		{ID: "c", Info: []byte("os=linux;disk=500G")},
	}
	linux := w.ByInfo(func(info []byte) bool {
		return strings.Contains(string(info), "os=linux")
	})
	ids := make([]string, 0, len(linux))
	for _, p := range linux {
		ids = append(ids, p.ID)
	}
	sort.Strings(ids)
	fmt.Println(ids)
	// Output: [a c]
}
