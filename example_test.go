package peerwindow_test

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"peerwindow"
)

// Example shows the minimal lifecycle: build an overlay, spawn peers,
// attach info, and select partners from a window.
func Example() {
	opts := peerwindow.Defaults()
	opts.Dilation = 200 // compress time hard for the example
	opts.Budget = 1e6
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		panic(err)
	}
	defer ov.Close()

	alice, err := ov.Spawn("alice")
	if err != nil {
		panic(err)
	}
	if _, err := ov.Spawn("bob", peerwindow.WithInfo([]byte("role=archive"))); err != nil {
		panic(err)
	}
	ov.Settle(2 * time.Minute)

	archives := alice.View().InfoContains("role=archive")
	fmt.Println("archive peers found:", len(archives))
	// Output: archive peers found: 1
}

// ExamplePeer_View reads an indexed window snapshot: obtaining the View
// is one atomic load, and its queries answer from incremental indexes
// without copying the window.
func ExamplePeer_View() {
	opts := peerwindow.Defaults()
	opts.Dilation = 200
	opts.Budget = 1e6
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		panic(err)
	}
	defer ov.Close()

	alice, err := ov.Spawn("alice")
	if err != nil {
		panic(err)
	}
	if _, err := ov.Spawn("bob", peerwindow.WithInfo([]byte("os=linux;disk=2T"))); err != nil {
		panic(err)
	}
	ov.Settle(2 * time.Minute)

	v := alice.View()
	fmt.Println("peers:", v.Len())
	fmt.Println("with os=linux:", len(v.WithField("os=linux")))
	big := v.CountWhere(func(r peerwindow.Ref) bool {
		return strings.Contains(r.Info(), "disk=2T")
	})
	fmt.Println("with 2T disks:", big)
	// Output:
	// peers: 1
	// with os=linux: 1
	// with 2T disks: 1
}

// ExamplePeer_Subscribe reacts to window changes instead of polling:
// every pointer the protocol adds, updates or removes arrives as a
// WindowEvent.
func ExamplePeer_Subscribe() {
	opts := peerwindow.Defaults()
	opts.Dilation = 200
	opts.Budget = 1e6
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		panic(err)
	}
	defer ov.Close()

	alice, err := ov.Spawn("alice")
	if err != nil {
		panic(err)
	}
	sub := alice.Subscribe()
	defer sub.Close()

	if _, err := ov.Spawn("bob", peerwindow.WithInfo([]byte("role=archive"))); err != nil {
		panic(err)
	}

	ev := <-sub.Events()
	fmt.Println(ev.Kind, "info:", string(ev.Pointer().Info))
	// Output: added info: role=archive
}

// ExampleWindow_Strongest demonstrates the §3 selection helper: smaller
// level values mark stronger (and statistically longer-lived) peers.
func ExampleWindow_Strongest() {
	w := peerwindow.Window{
		{ID: "deep", Level: 5},
		{ID: "top", Level: 0},
		{ID: "mid", Level: 2},
	}
	for _, p := range w.Strongest(2) {
		fmt.Println(p.ID, p.Level)
	}
	// Output:
	// top 0
	// mid 2
}

// ExampleWindow_ByInfo filters a window by application-attached info.
func ExampleWindow_ByInfo() {
	w := peerwindow.Window{
		{ID: "a", Info: []byte("os=linux;disk=2T")},
		{ID: "b", Info: []byte("os=plan9")},
		{ID: "c", Info: []byte("os=linux;disk=500G")},
	}
	linux := w.ByInfo(func(info []byte) bool {
		return strings.Contains(string(info), "os=linux")
	})
	ids := make([]string, 0, len(linux))
	for _, p := range linux {
		ids = append(ids, p.ID)
	}
	sort.Strings(ids)
	fmt.Println(ids)
	// Output: [a c]
}
