package peerwindow

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"peerwindow/internal/query"
	"peerwindow/internal/xrand"
)

// refSampleIndexes is the specification for query.SampleIndexes: a full
// forward Fisher–Yates over a real index array, stopping after k draws.
// The production code's dense branch is this verbatim and its sparse
// branch must consume the identical draw sequence, so both must match
// this reference for every (n, k, seed).
func refSampleIndexes(n, k int, seed uint64) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := xrand.New(seed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// TestSampleIndexesPinned pins concrete outputs of the sampling helper.
// These values are part of the compatibility surface: Window.Sample and
// View.Sample promise seed-reproducible selections, so a change here is
// a breaking change for callers that persist seeds.
func TestSampleIndexesPinned(t *testing.T) {
	cases := []struct {
		n, k int
		seed uint64
		want []int
	}{
		{10, 4, 7, []int{7, 3, 8, 9}},      // dense branch (4k >= n)
		{100, 4, 7, []int{70, 28, 84, 98}}, // sparse branch (4k < n)
		{8, 8, 1, []int{5, 4, 0, 1, 6, 2, 3, 7}},
		{1000, 6, 42, []int{83, 379, 680, 924, 991, 770}},
	}
	for _, c := range cases {
		got := query.SampleIndexes(c.n, c.k, c.seed)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("SampleIndexes(%d, %d, %d) = %v, want %v", c.n, c.k, c.seed, got, c.want)
		}
	}
}

// TestSampleIndexesBranchAgreement drives both representation branches
// against the reference across a grid of shapes and seeds: the map-backed
// sparse branch must pick exactly the indexes the array-backed dense
// branch picks, or a seed would select different peers depending on
// window size.
func TestSampleIndexesBranchAgreement(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33, 100, 257, 1000, 5000} {
		for _, k := range []int{0, 1, 2, 3, 8, 17, 64} {
			for seed := uint64(0); seed < 5; seed++ {
				got := query.SampleIndexes(n, k, seed)
				want := refSampleIndexes(n, k, seed)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("SampleIndexes(%d, %d, %d) = %v, reference = %v", n, k, seed, got, want)
				}
				seen := make(map[int]bool, len(got))
				for _, ix := range got {
					if ix < 0 || ix >= n {
						t.Fatalf("SampleIndexes(%d, %d, %d): index %d out of range", n, k, seed, ix)
					}
					if seen[ix] {
						t.Fatalf("SampleIndexes(%d, %d, %d): duplicate index %d", n, k, seed, ix)
					}
					seen[ix] = true
				}
			}
		}
	}
}

// TestWindowSamplePinned pins Window.Sample against a concrete window so
// the seed → selection mapping cannot drift silently.
func TestWindowSamplePinned(t *testing.T) {
	w := make(Window, 10)
	for i := range w {
		w[i] = Pointer{ID: fmt.Sprintf("n%02d", i), Level: i % 3}
	}
	got := w.Sample(4, 7)
	want := []string{"n07", "n03", "n08", "n09"} // SampleIndexes(10, 4, 7)
	if len(got) != len(want) {
		t.Fatalf("Sample(4, 7) returned %d pointers, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("Sample(4, 7)[%d] = %q, want %q", i, got[i].ID, id)
		}
	}
	// k >= len keeps the historical copy-everything behavior, in order.
	all := w.Sample(10, 99)
	for i := range all {
		if all[i].ID != w[i].ID {
			t.Fatalf("Sample(len) should copy in order; [%d] = %q", i, all[i].ID)
		}
	}
}

// TestStrongestHeapMatchesStableSort is the equivalence property for the
// bounded-heap Strongest: for random windows and every k it must return
// exactly what the old implementation — stable sort by level, take the
// prefix — returned.
func TestStrongestHeapMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		w := make(Window, n)
		for i := range w {
			w[i] = Pointer{ID: fmt.Sprintf("p%03d", i), Level: rng.Intn(6)}
		}
		ref := append(Window(nil), w...)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].Level < ref[j].Level })
		for _, k := range []int{0, 1, 2, n / 2, n - 1, n, n + 5} {
			got := w.Strongest(k)
			wantLen := k
			if wantLen > n {
				wantLen = n
			}
			if wantLen < 0 {
				wantLen = 0
			}
			if len(got) != wantLen {
				t.Fatalf("trial %d: Strongest(%d) returned %d of %d", trial, k, len(got), wantLen)
			}
			for i := 0; i < wantLen; i++ {
				if got[i].ID != ref[i].ID {
					t.Fatalf("trial %d: Strongest(%d)[%d] = %q, stable sort gives %q",
						trial, k, i, got[i].ID, ref[i].ID)
				}
			}
		}
	}
}

// TestStrongestAllocsIndependentOfN guards the redesign's point: picking
// k strongest peers must allocate proportionally to k, not to the window
// size, so the allocation count at N=256 and N=4096 must be identical.
func TestStrongestAllocsIndependentOfN(t *testing.T) {
	mk := func(n int) Window {
		w := make(Window, n)
		for i := range w {
			w[i] = Pointer{ID: fmt.Sprintf("p%05d", i), Level: i % 7}
		}
		return w
	}
	small, large := mk(256), mk(4096)
	const k = 8
	allocsSmall := testing.AllocsPerRun(50, func() { _ = small.Strongest(k) })
	allocsLarge := testing.AllocsPerRun(50, func() { _ = large.Strongest(k) })
	if allocsSmall != allocsLarge {
		t.Fatalf("Strongest(%d) allocations scale with N: %.0f at N=256 vs %.0f at N=4096",
			k, allocsSmall, allocsLarge)
	}
	if allocsLarge > 8 {
		t.Fatalf("Strongest(%d) makes %.0f allocations, want a small constant", k, allocsLarge)
	}
}
