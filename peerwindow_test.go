package peerwindow

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// testOptions runs at 100× with huge budgets so levels stay at 0.
func testOptions(seed uint64) Options {
	o := Defaults()
	o.Dilation = 100
	o.Budget = 1e9
	o.Seed = seed
	return o
}

func newTestOverlay(t *testing.T, o Options) *Overlay {
	t.Helper()
	ov, err := NewOverlay(o)
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	return ov
}

func buildPeers(t *testing.T, ov *Overlay, names ...string) []*Peer {
	t.Helper()
	out := make([]*Peer, 0, len(names))
	for _, name := range names {
		p, err := ov.Spawn(name)
		if err != nil {
			t.Fatalf("spawn %q: %v", name, err)
		}
		out = append(out, p)
		ov.Settle(20 * time.Second)
	}
	return out
}

func TestOverlayWindowsConverge(t *testing.T) {
	ov := newTestOverlay(t, testOptions(1))
	defer ov.Close()
	peers := buildPeers(t, ov, "a", "b", "c", "d", "e", "f")
	ov.Settle(2 * time.Minute)
	for _, p := range peers {
		if got := len(p.Window()); got != len(peers)-1 {
			t.Fatalf("%s window has %d pointers, want %d", p.Name(), got, len(peers)-1)
		}
	}
}

func TestSpawnDuplicateName(t *testing.T) {
	ov := newTestOverlay(t, testOptions(2))
	defer ov.Close()
	if _, err := ov.Spawn("dup"); err != nil {
		t.Fatal(err)
	}
	_, err := ov.Spawn("dup")
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v want ErrDuplicateName", err)
	}
}

func TestPeerLookupAndList(t *testing.T) {
	ov := newTestOverlay(t, testOptions(3))
	defer ov.Close()
	buildPeers(t, ov, "x", "y")
	if _, ok := ov.Peer("x"); !ok {
		t.Fatal("Peer(x) not found")
	}
	if _, ok := ov.Peer("nope"); ok {
		t.Fatal("Peer(nope) found")
	}
	if got := len(ov.Peers()); got != 2 {
		t.Fatalf("Peers() = %d", got)
	}
	p, _ := ov.Peer("x")
	p.Crash()
	if got := len(ov.Peers()); got != 1 {
		t.Fatalf("Peers() after crash = %d", got)
	}
	if _, ok := ov.Peer("x"); ok {
		t.Fatal("crashed peer still listed")
	}
}

func TestInfoSelection(t *testing.T) {
	ov := newTestOverlay(t, testOptions(4))
	defer ov.Close()
	peers := buildPeers(t, ov, "p1", "p2", "p3", "p4", "p5")
	peers[1].SetInfo([]byte("os=linux;disk=2T"))
	peers[2].SetInfo([]byte("os=plan9;disk=1T"))
	peers[3].SetInfo([]byte("os=linux;disk=500G"))
	ov.Settle(2 * time.Minute)

	w := peers[0].Window()
	linux := w.InfoContains("os=linux")
	if len(linux) != 2 {
		t.Fatalf("found %d linux peers, want 2", len(linux))
	}
	plan9 := w.ByInfo(func(b []byte) bool { return strings.Contains(string(b), "plan9") })
	if len(plan9) != 1 {
		t.Fatalf("found %d plan9 peers, want 1", len(plan9))
	}
	if got := w.Filter(func(p Pointer) bool { return len(p.Info) == 0 }); len(got) != 1 {
		t.Fatalf("peers without info = %d, want 1", len(got))
	}
}

func TestWindowHelpers(t *testing.T) {
	w := Window{
		{ID: "a", Level: 3},
		{ID: "b", Level: 0},
		{ID: "c", Level: 1},
		{ID: "d", Level: 0},
	}
	s := w.Strongest(2)
	if len(s) != 2 || s[0].Level != 0 || s[1].Level != 0 {
		t.Fatalf("Strongest(2) = %+v", s)
	}
	if got := w.Strongest(10); len(got) != 4 {
		t.Fatalf("Strongest(10) should return all: %d", len(got))
	}
	sample := w.Sample(2, 7)
	if len(sample) != 2 {
		t.Fatalf("Sample(2) = %d", len(sample))
	}
	if got := w.Sample(99, 7); len(got) != 4 {
		t.Fatalf("Sample(99) should return all: %d", len(got))
	}
	// Deterministic under equal seeds.
	a := w.Sample(2, 9)
	b := w.Sample(2, 9)
	if a[0].ID != b[0].ID || a[1].ID != b[1].ID {
		t.Fatal("Sample not deterministic")
	}
}

func TestLeaveRemovesFromWindows(t *testing.T) {
	ov := newTestOverlay(t, testOptions(5))
	defer ov.Close()
	peers := buildPeers(t, ov, "m1", "m2", "m3", "m4")
	leaverID := peers[2].ID()
	peers[2].Leave()
	ov.Settle(2 * time.Minute)
	for _, p := range ov.Peers() {
		for _, q := range p.Window() {
			if q.ID == leaverID {
				t.Fatalf("%s still lists the departed peer", p.Name())
			}
		}
	}
}

func TestDefaultsAreUsable(t *testing.T) {
	o := Defaults()
	if o.Budget <= 0 || o.Dilation <= 0 || o.TopListSize <= 0 {
		t.Fatal("defaults incomplete")
	}
	// toCore must produce a valid engine configuration.
	if err := o.toCore().Validate(); err != nil {
		t.Fatalf("defaults do not validate: %v", err)
	}
}

func TestMaxInfoLenExported(t *testing.T) {
	if MaxInfoLen != 255 {
		t.Fatalf("MaxInfoLen = %d", MaxInfoLen)
	}
}

func TestOverlayTrafficMetrics(t *testing.T) {
	ov := newTestOverlay(t, testOptions(6))
	defer ov.Close()
	buildPeers(t, ov, "s1", "s2", "s3")
	ov.Settle(time.Minute)
	m := ov.Metrics()
	var sent, sentBits, dropped uint64
	for name, v := range m.Counters {
		switch {
		case strings.HasPrefix(name, "net.send_bits."):
			sentBits += v
		case strings.HasPrefix(name, "net.send."):
			sent += v
		case strings.HasPrefix(name, "net.drop."):
			dropped += v
		}
	}
	if sent == 0 || sentBits == 0 {
		t.Fatalf("no traffic recorded: send=%d bits=%d", sent, sentBits)
	}
	if got := m.Gauge("net.hosts"); got != 3 {
		t.Fatalf("net.hosts = %d", got)
	}
	if dropped != 0 {
		t.Fatalf("unexpected drops without loss injection: %d", dropped)
	}
}

func TestOverlayLossInjection(t *testing.T) {
	o := testOptions(7)
	o.LossRate = 0.2
	ov := newTestOverlay(t, o)
	defer ov.Close()
	// With 20% loss individual joins may legitimately exhaust their
	// retries; keep trying fresh names until three peers are up.
	names := []string{"l1", "l2", "l3", "l4", "l5", "l6", "l7", "l8"}
	up := 0
	for _, name := range names {
		if _, err := ov.Spawn(name); err == nil {
			up++
			ov.Settle(20 * time.Second)
		}
		if up == 3 {
			break
		}
	}
	if up < 3 {
		t.Fatalf("only %d/3 peers joined under 20%% loss", up)
	}
	ov.Settle(time.Minute)
	var dropped uint64
	for name, v := range ov.Metrics().Counters {
		if strings.HasPrefix(name, "net.drop.") {
			dropped += v
		}
	}
	if dropped == 0 {
		t.Fatal("loss injection inactive")
	}
}

func TestOverlayTrace(t *testing.T) {
	o := testOptions(8)
	o.TraceCapacity = 256
	ov := newTestOverlay(t, o)
	defer ov.Close()
	buildPeers(t, ov, "t1", "t2", "t3")
	ov.Settle(time.Minute)
	var buf bytes.Buffer
	total, err := ov.DumpTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("trace recorded nothing")
	}
	out := buf.String()
	if !strings.Contains(out, "send") || !strings.Contains(out, "deliver") {
		t.Fatalf("trace missing kinds:\n%s", out[:min(400, len(out))])
	}
	// Without a capacity the dump is a silent no-op.
	ov2 := newTestOverlay(t, testOptions(9))
	defer ov2.Close()
	if n, err := ov2.DumpTrace(&buf); n != 0 || err != nil {
		t.Fatal("trace should be disabled by default")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSpawnWatchedSeesChanges(t *testing.T) {
	ov := newTestOverlay(t, testOptions(10))
	defer ov.Close()
	var mu sync.Mutex
	var changes []Change
	watcher := func(c Change) {
		mu.Lock()
		changes = append(changes, c)
		mu.Unlock()
	}
	if _, err := ov.Spawn("watcher", WithWatcher(watcher)); err != nil {
		t.Fatal(err)
	}
	ov.Settle(20 * time.Second)
	buildPeers(t, ov, "w1", "w2")
	ov.Settle(time.Minute)
	p, _ := ov.Peer("w2")
	goneID := p.ID()
	p.Leave()
	ov.Settle(2 * time.Minute)

	mu.Lock()
	defer mu.Unlock()
	var adds, removes int
	removeSeen := false
	for _, c := range changes {
		if c.Added {
			adds++
		} else {
			removes++
			if c.Pointer.ID == goneID && c.Reason == "leave" {
				removeSeen = true
			}
		}
	}
	if adds < 2 {
		t.Fatalf("watcher saw %d additions, want >= 2", adds)
	}
	if !removeSeen {
		t.Fatalf("watcher missed the leave removal: %+v", changes)
	}
}

func TestNewOverlayValidates(t *testing.T) {
	if _, err := NewOverlay(testOptions(70)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}

	bad := testOptions(71)
	bad.TopListSize = 0
	if _, err := NewOverlay(bad); err == nil {
		t.Fatal("TopListSize=0 accepted")
	}

	bad = testOptions(72)
	bad.LossRate = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("LossRate=1.5 accepted")
	}

	// AckTimeout that dilates below the wall-clock scheduler floor: 3 s
	// of virtual time at 10000× is 0.3 ms of wall time.
	bad = testOptions(73)
	bad.Dilation = 10000
	if err := bad.Validate(); err == nil {
		t.Fatal("sub-millisecond wall AckTimeout accepted")
	}
	if !strings.Contains(bad.Validate().Error(), "wall time") {
		t.Fatalf("unhelpful error: %v", bad.Validate())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on invalid options")
		}
	}()
	New(bad)
}

func TestSpawnOptions(t *testing.T) {
	ov, err := NewOverlay(testOptions(74))
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Close()

	var mu sync.Mutex
	var adds int
	if _, err := ov.Spawn("first",
		WithBudget(2e9),
		WithInfo([]byte("role=seed")),
		WithWatcher(func(c Change) {
			mu.Lock()
			if c.Added {
				adds++
			}
			mu.Unlock()
		}),
	); err != nil {
		t.Fatal(err)
	}
	ov.Settle(20 * time.Second)
	second, err := ov.Spawn("second")
	if err != nil {
		t.Fatal(err)
	}
	ov.Settle(time.Minute)

	// WithInfo applied before the join, so second's window already
	// carries it without a separate info-change announcement.
	got := second.Window().InfoContains("role=seed")
	if len(got) != 1 {
		t.Fatalf("second sees %d pointers with role=seed, want 1", len(got))
	}
	mu.Lock()
	defer mu.Unlock()
	if adds == 0 {
		t.Fatal("WithWatcher saw no additions")
	}
}

func TestSpawnRejectsOversizedInfo(t *testing.T) {
	ov, err := NewOverlay(testOptions(75))
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Close()
	if _, err := ov.Spawn("big", WithInfo(make([]byte, MaxInfoLen+1))); err == nil {
		t.Fatal("oversized info accepted")
	}
}

func TestPeerAndOverlayMetrics(t *testing.T) {
	ov, err := NewOverlay(testOptions(76))
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Close()
	peers := buildPeers(t, ov, "m1", "m2", "m3")
	ov.Settle(2 * time.Minute)

	m := peers[0].Metrics()
	if got := m.Counter("peers.added"); got < 2 {
		t.Fatalf("m1 peers.added = %d, want >= 2", got)
	}
	if got := m.Gauge("peer.window_size"); got != 2 {
		t.Fatalf("m1 peer.window_size = %d, want 2", got)
	}
	// The issue's acceptance bar: at least 10 distinct instruments per
	// peer, always present even at zero.
	if total := len(m.Counters) + len(m.Gauges) + len(m.Histograms); total < 10 {
		t.Fatalf("peer snapshot has %d instruments, want >= 10", total)
	}
	if _, ok := m.Histograms["probe.detect_latency_seconds"]; !ok {
		t.Fatal("peer snapshot missing probe.detect_latency_seconds histogram")
	}

	om := ov.Metrics()
	// Network-level instruments only exist overlay-wide.
	var sent uint64
	for name, v := range om.Counters {
		if strings.HasPrefix(name, "net.send.") {
			sent += v
		}
	}
	if sent == 0 {
		t.Fatal("overlay metrics report no sends")
	}
	if got := om.Gauge("net.hosts"); got != 3 {
		t.Fatalf("net.hosts = %d, want 3", got)
	}
	// Gauges add across peers: 3 windows of 2 pointers each.
	if got := om.Gauge("peer.window_size"); got != 6 {
		t.Fatalf("summed peer.window_size = %d, want 6", got)
	}
	// Consistency with the deprecated Stats surface.
	if s := ov.Stats(); s.Peers != 3 {
		t.Fatalf("Stats().Peers = %d, want 3", s.Peers)
	}
}

// TestDeprecatedWrappers keeps the pre-NewOverlay surface covered: the
// wrappers stay intact for old callers even though everything else here
// uses the current API.
func TestDeprecatedWrappers(t *testing.T) {
	ov := New(testOptions(77))
	defer ov.Close()
	if _, err := ov.SpawnBudget("b", 2e9); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := 0
	watch := func(Change) { mu.Lock(); seen++; mu.Unlock() }
	if _, err := ov.SpawnWatched("w", 0, watch); err != nil {
		t.Fatal(err)
	}
	ov.Settle(time.Minute)
	s := ov.Stats()
	if s.Peers != 2 || s.Messages == 0 {
		t.Fatalf("Stats() = %+v", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen == 0 {
		t.Fatal("SpawnWatched watcher saw nothing")
	}
}

func TestHistogramMean(t *testing.T) {
	h := Histogram{Count: 4, Sum: 10}
	if got := h.Mean(); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
	if got := (Histogram{}).Mean(); got != 0 {
		t.Fatalf("empty Mean = %g, want 0", got)
	}
}

func TestStrongestSortedStable(t *testing.T) {
	w := Window{
		{ID: "d", Level: 3}, {ID: "a", Level: 1}, {ID: "c", Level: 1},
		{ID: "b", Level: 0}, {ID: "e", Level: 2},
	}
	got := w.Strongest(3)
	want := []string{"b", "a", "c"} // level order, ties in input order
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("Strongest[%d] = %q, want %q (full: %+v)", i, got[i].ID, id, got)
		}
	}
	if len(w.Strongest(100)) != len(w) {
		t.Fatal("Strongest(k>len) should return everything")
	}
}
