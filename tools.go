//go:build tools

// Package tools pins the CI tooling (staticcheck, govulncheck) as
// tracked dependencies instead of floating `go run pkg@version`
// invocations. The pins live in go.tools.mod — a separate modfile so the
// main module stays dependency-free — and CI invokes them with
//
//	go mod tidy -modfile=go.tools.mod
//	go run -modfile=go.tools.mod honnef.co/go/tools/cmd/staticcheck ./...
//	go run -modfile=go.tools.mod golang.org/x/vuln/cmd/govulncheck ./...
//
// The tools build tag keeps this file out of every normal build; its
// imports exist only so `go mod tidy -modfile=go.tools.mod` can see what
// to retain.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
