// Load balancing over PeerWindow, after the paper's §1 motivation
// ("heavily-loaded nodes need to find lightly-loaded ones to transfer
// the overload", citing Godfrey et al.).
//
// Every peer publishes its current load in its attached info. A
// heavily-loaded peer scans its window for the lightest peers and sheds
// load to them; because windows are maintained by multicast, the
// published loads stay fresh without any directory service. The demo
// runs a few rebalancing rounds and prints the spread shrinking.
//
// Run with:
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"peerwindow"
)

// parseLoad extracts the load from "load=<units>" info.
func parseLoad(info []byte) (int, bool) {
	s := string(info)
	const key = "load="
	i := strings.Index(s, key)
	if i < 0 {
		return 0, false
	}
	v, err := strconv.Atoi(s[i+len(key):])
	if err != nil {
		return 0, false
	}
	return v, true
}

func main() {
	opts := peerwindow.Defaults()
	opts.Dilation = 100
	opts.Budget = 1e6
	opts.Seed = 7
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ov.Close()

	// A deliberately skewed initial assignment.
	loads := map[string]int{
		"w0": 96, "w1": 80, "w2": 64, "w3": 30,
		"w4": 12, "w5": 8, "w6": 6, "w7": 4,
	}
	names := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	for _, name := range names {
		info := peerwindow.WithInfo([]byte(fmt.Sprintf("load=%d", loads[name])))
		if _, err := ov.Spawn(name, info); err != nil {
			log.Fatalf("spawn %s: %v", name, err)
		}
		ov.Settle(20 * time.Second)
	}
	ov.Settle(2 * time.Minute)

	spread := func() (min, max int) {
		min, max = 1<<30, -1
		for _, l := range loads {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		return min, max
	}

	min, max := spread()
	fmt.Printf("initial loads: spread [%d, %d]\n", min, max)

	for round := 1; round <= 4; round++ {
		// Each overloaded worker consults its own window (stale-tolerant,
		// fully local) and sheds half its surplus to the lightest peer it
		// sees.
		for ni, name := range names {
			p, ok := ov.Peer(name)
			if !ok {
				continue
			}
			myLoad := loads[name]
			// Collect the few lightest peers the window advertises and
			// pick one at random — shedding to the single global minimum
			// makes every overloaded peer dogpile the same target. TopK
			// over the peer's View keeps only the 3 best candidates while
			// scanning the snapshot once, instead of copying and sorting
			// the whole window; negating the load turns "lightest" into
			// the maximization TopK performs.
			lightest := p.View().TopK(3, func(r peerwindow.Ref) (float64, bool) {
				l, ok := parseLoad([]byte(r.Info()))
				return -float64(l), ok
			})
			type cand struct {
				id   string
				load int
			}
			var cands []cand
			for _, q := range lightest {
				if l, ok := parseLoad(q.Info); ok {
					cands = append(cands, cand{q.ID, l})
				}
			}
			if len(cands) == 0 {
				continue
			}
			pick := cands[(round+ni)%len(cands)]
			// The window's view may lag; settle the transfer against the
			// target's live load (a real system would negotiate this in
			// the transfer message).
			target := ""
			for _, other := range names {
				if q, ok := ov.Peer(other); ok && q.ID() == pick.id {
					target = other
				}
			}
			if target == "" {
				continue
			}
			transfer := (myLoad - loads[target]) / 3
			if transfer < 5 {
				continue
			}
			loads[name] -= transfer
			loads[target] += transfer
			p.SetInfo([]byte(fmt.Sprintf("load=%d", loads[name])))
			if q, ok := ov.Peer(target); ok {
				q.SetInfo([]byte(fmt.Sprintf("load=%d", loads[target])))
			}
		}
		// Let the info-change multicasts propagate before the next round.
		ov.Settle(90 * time.Second)
		min, max = spread()
		fmt.Printf("after round %d: spread [%d, %d]\n", round, min, max)
	}

	// Report the final distribution.
	sorted := append([]string(nil), names...)
	sort.Slice(sorted, func(i, j int) bool { return loads[sorted[i]] > loads[sorted[j]] })
	fmt.Println("final loads:")
	for _, name := range sorted {
		fmt.Printf("  %-3s %3d %s\n", name, loads[name], strings.Repeat("#", loads[name]/2))
	}
	if _, max := spread(); max > 60 {
		fmt.Println("warning: balancing did not converge")
	}
}
