// GUESS-style non-forwarding search over PeerWindow (§1, §3 and the
// Yang/Vinograd/Garcia-Molina reference): instead of flooding a query
// through an overlay, a node first collects a large set of pointers —
// each annotated with the number of files the remote peer shares — and
// then probes the most promising candidates directly, highest shared
// count first.
//
// The demo compares the local hit rate of a GUESS search using the full
// PeerWindow against one restricted to a small routing-table-sized
// sample, which is the comparison the paper's introduction draws.
//
// Run with:
//
//	go run ./examples/guess
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"peerwindow"

	"peerwindow/internal/xrand"
)

// library maps peer name -> the file IDs it shares (small ints).
type library map[string][]int

func sharesFile(files []int, want int) bool {
	for _, f := range files {
		if f == want {
			return true
		}
	}
	return false
}

func main() {
	opts := peerwindow.Defaults()
	opts.Dilation = 100
	opts.Budget = 1e6
	opts.Seed = 11
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ov.Close()

	rng := xrand.New(99)
	const peers = 14
	const catalogue = 60 // distinct file IDs in the universe

	libs := make(library, peers)
	idToName := make(map[string]string, peers)
	for i := 0; i < peers; i++ {
		name := fmt.Sprintf("peer-%02d", i)
		p, err := ov.Spawn(name)
		if err != nil {
			log.Fatalf("spawn %s: %v", name, err)
		}
		// Popularity-skewed libraries: a few peers share a lot.
		n := 1 + rng.Intn(4)
		if i%5 == 0 {
			n = 10 + rng.Intn(10)
		}
		files := make([]int, 0, n)
		for len(files) < n {
			f := rng.Intn(catalogue)
			if !sharesFile(files, f) {
				files = append(files, f)
			}
		}
		libs[name] = files
		// §3: "GUESS protocol can attach the number of shared files to
		// the pointers."
		p.SetInfo([]byte(fmt.Sprintf("files=%d", n)))
		idToName[p.ID()] = name
		ov.Settle(20 * time.Second)
	}
	ov.Settle(2 * time.Minute)

	searcher, _ := ov.Peer("peer-01")
	view := searcher.View()
	fmt.Printf("searcher window: %d pointers\n", view.Len())

	// Order candidates by announced shared-file count, richest first —
	// the GUESS probe order. TopK scans the snapshot once and matches a
	// stable descending sort (ties keep window order).
	ordered := view.TopK(view.Len(), func(r peerwindow.Ref) (float64, bool) {
		return float64(filesOf([]byte(r.Info()))), true
	})

	probeBudget := 5
	queries := 40
	hitsFull, hitsSmall := 0, 0
	small := view.Sample(4, 3) // a routing-table-sized pointer set
	for q := 0; q < queries; q++ {
		want := rng.Intn(catalogue)
		// Full PeerWindow, best-first, limited probes.
		for i, cand := range ordered {
			if i >= probeBudget {
				break
			}
			if sharesFile(libs[idToName[cand.ID]], want) {
				hitsFull++
				break
			}
		}
		// Small random pointer set, same probe budget.
		for i, cand := range small {
			if i >= probeBudget {
				break
			}
			if sharesFile(libs[idToName[cand.ID]], want) {
				hitsSmall++
				break
			}
		}
	}
	fmt.Printf("non-forwarding search, %d queries, %d probes each:\n", queries, probeBudget)
	fmt.Printf("  full PeerWindow (%2d candidates, best-first): %2d/%d hits\n",
		len(ordered), hitsFull, queries)
	fmt.Printf("  small pointer set (%d random candidates):     %2d/%d hits\n",
		len(small), hitsSmall, queries)
	if hitsFull < hitsSmall {
		fmt.Println("unexpected: the large window should not lose")
	}

	// Show what the attached info looks like on the wire.
	fmt.Println("\nrichest candidates by announced share count:")
	for i, c := range ordered[:3] {
		fmt.Printf("  #%d %s… %s (actually %d files)\n",
			i+1, c.ID[:8], c.Info, len(libs[idToName[c.ID]]))
	}
}

// filesOf parses "files=N" info.
func filesOf(info []byte) int {
	s := string(info)
	i := strings.Index(s, "files=")
	if i < 0 {
		return 0
	}
	v, _ := strconv.Atoi(s[i+6:])
	return v
}
