// Quickstart: bring up a small PeerWindow overlay, attach info to
// pointers, and read another peer's window.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"peerwindow"
)

func main() {
	opts := peerwindow.Defaults()
	opts.Dilation = 100 // a virtual minute per 600 ms of wall time
	opts.Budget = 1e6   // plenty: everyone collects the whole system
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ov.Close()

	// The first peer bootstraps the overlay; the rest join through the
	// paper's four-step process (§4.3).
	names := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for _, name := range names {
		if _, err := ov.Spawn(name); err != nil {
			log.Fatalf("spawn %s: %v", name, err)
		}
		// Give each join's multicast a moment to reach everyone.
		ov.Settle(20 * time.Second)
	}

	// Attach application info to some pointers (§3): every window holding
	// the pointer learns the change via multicast.
	bob, _ := ov.Peer("bob")
	bob.SetInfo([]byte("os=linux;zone=eu"))
	carol, _ := ov.Peer("carol")
	carol.SetInfo([]byte("os=openbsd;zone=us"))
	ov.Settle(2 * time.Minute)

	// View is an immutable, indexed snapshot of alice's window: obtaining
	// it is one atomic load, and the selection helpers below answer from
	// incremental indexes instead of rescanning all pointers.
	alice, _ := ov.Peer("alice")
	view := alice.View()
	fmt.Printf("alice (level %d) sees %d peers:\n", alice.Level(), view.Len())
	view.Each(func(r peerwindow.Ref) bool {
		fmt.Printf("  %s…  level=%d  info=%q\n", r.ID()[:8], r.Level(), r.Info())
		return true
	})

	// Select partners locally — no queries hit the network.
	if linux := view.InfoContains("os=linux"); len(linux) > 0 {
		fmt.Printf("first linux peer alice found: %s…\n", linux[0].ID[:8])
	}
	strongest := view.Strongest(2)
	fmt.Printf("two strongest peers: level %d and %d\n",
		strongest[0].Level, strongest[1].Level)

	fmt.Printf("alice's maintenance input: %.0f bit/s of virtual time\n",
		alice.InputRate())
}
