// Backup-partner selection in the style of Pastiche and the cooperative
// backup schemes the paper's introduction motivates: backup systems want
// partners with a similar operating system (shared base data, cheap
// deltas) and guard replicas on partners with a *different* OS (a virus
// that wipes one platform cannot take both copies).
//
// Each peer attaches "os=<name>;rel=<version>" to its pointer; partner
// search is then a purely local scan of the PeerWindow — no flooding, no
// directory.
//
// Run with:
//
//	go run ./examples/backup
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"peerwindow"
)

// profile is the attached info of one participant.
type profile struct {
	name string
	os   string
	rel  string
}

func main() {
	opts := peerwindow.Defaults()
	opts.Dilation = 100
	opts.Budget = 1e6
	opts.Seed = 42
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ov.Close()

	fleet := []profile{
		{"atlas", "linux", "6.8"},
		{"borei", "linux", "6.1"},
		{"castor", "openbsd", "7.5"},
		{"deimos", "windows", "11"},
		{"electra", "linux", "6.8"},
		{"fornax", "windows", "10"},
		{"gaspra", "openbsd", "7.4"},
		{"hydra", "linux", "5.15"},
	}
	// Spawn the first peer and subscribe to its window before the rest of
	// the fleet joins: instead of polling Window() in a loop, the
	// subscription delivers every pointer the join multicasts add as an
	// event, and a local map materialized from baseline+events tracks the
	// window exactly.
	var sub *peerwindow.Subscription
	partners := make(map[string]peerwindow.Pointer)
	for i, pr := range fleet {
		info := peerwindow.WithInfo([]byte(fmt.Sprintf("os=%s;rel=%s", pr.os, pr.rel)))
		if _, err := ov.Spawn(pr.name, info); err != nil {
			log.Fatalf("spawn %s: %v", pr.name, err)
		}
		if i == 0 {
			atlas, _ := ov.Peer(pr.name)
			sub = atlas.Subscribe(peerwindow.SubscribeBuffer(1024))
			defer sub.Close()
			sub.Baseline().Each(func(r peerwindow.Ref) bool {
				partners[r.ID()] = r.Pointer()
				return true
			})
		}
		ov.Settle(20 * time.Second)
	}
	// Let the info-change multicasts drain.
	ov.Settle(2 * time.Minute)

	// Fold the buffered events into the materialized window. Events with
	// Epoch ≤ the baseline's are already in it; removals delete.
	base := sub.Baseline().Epoch()
drain:
	for {
		select {
		case ev := <-sub.Events():
			if ev.Epoch <= base {
				continue
			}
			switch ev.Kind {
			case peerwindow.ChangeRemoved:
				delete(partners, ev.Pointer().ID)
			default:
				p := ev.Pointer()
				partners[p.ID] = p
			}
		default:
			break drain
		}
	}
	if sub.Dropped() > 0 {
		log.Fatalf("subscription dropped %d events (buffer too small)", sub.Dropped())
	}

	atlas, _ := ov.Peer("atlas")
	view := atlas.View()
	if view.Len() != len(partners) {
		log.Fatalf("materialized window has %d entries, view has %d",
			len(partners), view.Len())
	}
	fmt.Printf("atlas collected %d pointers\n\n", len(partners))

	// Similar-OS partners (Pastiche: overlapping data, cheap backups).
	// The field index answers this without scanning the window.
	same := view.WithField("os=linux")
	fmt.Println("similar-OS candidates (cheap incremental backups):")
	for _, p := range same {
		fmt.Printf("  %s…  %s\n", p.ID[:8], p.Info)
	}

	// Different-OS partners (Lillibridge et al.: survive a monoculture
	// attack).
	diverse := view.ByInfo(func(b []byte) bool {
		s := string(b)
		return len(s) > 0 && !strings.Contains(s, "os=linux")
	})
	fmt.Println("\ndiverse-OS candidates (virus-independence replicas):")
	for _, p := range diverse {
		fmt.Printf("  %s…  %s\n", p.ID[:8], p.Info)
	}

	// A sensible placement: two similar + one diverse partner.
	if len(same) >= 2 && len(diverse) >= 1 {
		fmt.Printf("\nplacement for atlas: similar={%s…, %s…} diverse={%s…}\n",
			same[0].ID[:8], same[1].ID[:8], diverse[0].ID[:8])
	}
}
