// Backup-partner selection in the style of Pastiche and the cooperative
// backup schemes the paper's introduction motivates: backup systems want
// partners with a similar operating system (shared base data, cheap
// deltas) and guard replicas on partners with a *different* OS (a virus
// that wipes one platform cannot take both copies).
//
// Each peer attaches "os=<name>;rel=<version>" to its pointer; partner
// search is then a purely local scan of the PeerWindow — no flooding, no
// directory.
//
// Run with:
//
//	go run ./examples/backup
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"peerwindow"
)

// profile is the attached info of one participant.
type profile struct {
	name string
	os   string
	rel  string
}

func main() {
	opts := peerwindow.Defaults()
	opts.Dilation = 100
	opts.Budget = 1e6
	opts.Seed = 42
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ov.Close()

	fleet := []profile{
		{"atlas", "linux", "6.8"},
		{"borei", "linux", "6.1"},
		{"castor", "openbsd", "7.5"},
		{"deimos", "windows", "11"},
		{"electra", "linux", "6.8"},
		{"fornax", "windows", "10"},
		{"gaspra", "openbsd", "7.4"},
		{"hydra", "linux", "5.15"},
	}
	for _, pr := range fleet {
		info := peerwindow.WithInfo([]byte(fmt.Sprintf("os=%s;rel=%s", pr.os, pr.rel)))
		if _, err := ov.Spawn(pr.name, info); err != nil {
			log.Fatalf("spawn %s: %v", pr.name, err)
		}
		ov.Settle(20 * time.Second)
	}
	// Let the info-change multicasts drain.
	ov.Settle(2 * time.Minute)

	atlas, _ := ov.Peer("atlas")
	window := atlas.Window()
	fmt.Printf("atlas collected %d pointers\n\n", len(window))

	// Similar-OS partners (Pastiche: overlapping data, cheap backups).
	same := window.InfoContains("os=linux")
	fmt.Println("similar-OS candidates (cheap incremental backups):")
	for _, p := range same {
		fmt.Printf("  %s…  %s\n", p.ID[:8], p.Info)
	}

	// Different-OS partners (Lillibridge et al.: survive a monoculture
	// attack).
	diverse := window.ByInfo(func(b []byte) bool {
		s := string(b)
		return len(s) > 0 && !strings.Contains(s, "os=linux")
	})
	fmt.Println("\ndiverse-OS candidates (virus-independence replicas):")
	for _, p := range diverse {
		fmt.Printf("  %s…  %s\n", p.ID[:8], p.Info)
	}

	// A sensible placement: two similar + one diverse partner.
	if len(same) >= 2 && len(diverse) >= 1 {
		fmt.Printf("\nplacement for atlas: similar={%s…, %s…} diverse={%s…}\n",
			same[0].ID[:8], same[1].ID[:8], diverse[0].ID[:8])
	}
}
