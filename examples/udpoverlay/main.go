// Real sockets: a PeerWindow overlay over UDP on the loopback
// interface. The same protocol engine that reproduces the paper's
// figures runs here with every message a datagram and every pointer
// carrying a routable IPv4:port endpoint. The demo builds a small
// overlay, shows the converged windows, crashes a node, and watches
// ring probing announce the death.
//
// Protocol timers are scaled down (~50×) so the demo finishes in
// seconds; the ratios between probe interval, ack timeout and forwarding
// delay are the paper's.
//
// Run with:
//
//	go run ./examples/udpoverlay
package main

import (
	"fmt"
	"log"
	"time"

	"peerwindow/internal/core"
	"peerwindow/internal/des"
	"peerwindow/internal/udptransport"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.ProbeInterval = 600 * des.Millisecond
	cfg.ProbeTimeout = 150 * des.Millisecond
	cfg.AckTimeout = 150 * des.Millisecond
	cfg.ForwardDelay = 20 * des.Millisecond
	cfg.ShiftCheckInterval = 2 * des.Second
	cfg.MeterWindow = 4 * des.Second
	cfg.ReconcileDelay = 1 * des.Second

	const count = 6
	nodes := make([]*udptransport.Node, 0, count)
	for i := 0; i < count; i++ {
		n, err := udptransport.Listen("127.0.0.1:0", fmt.Sprintf("peer-%d", i), 1e9, cfg)
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		nodes = append(nodes, n)
		self := n.Self()
		ip, port := self.Addr.IPv4()
		fmt.Printf("peer-%d listening on %d.%d.%d.%d:%d id=%s…\n",
			i, ip[0], ip[1], ip[2], ip[3], port, self.ID.String()[:8])
		if i == 0 {
			n.Bootstrap()
			continue
		}
		if err := n.Join(nodes[0].Self(), 10*time.Second); err != nil {
			log.Fatalf("join %d: %v", i, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	time.Sleep(time.Second)
	fmt.Println("\nconverged windows:")
	for i, n := range nodes {
		sent, recv := n.Counters()
		fmt.Printf("  peer-%d: %d pointers, %d datagrams out, %d in\n",
			i, len(n.Pointers()), sent, recv)
	}

	victim := nodes[2]
	victimID := victim.Self().ID
	fmt.Printf("\ncrashing peer-2 (%s…) without notice\n", victimID.String()[:8])
	victim.Close()

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(300 * time.Millisecond)
		clean := true
		for i, n := range nodes {
			if i == 2 {
				continue
			}
			for _, p := range n.Pointers() {
				if p.ID == victimID {
					clean = false
				}
			}
		}
		if clean {
			fmt.Println("ring probing detected the crash; every window is clean")
			return
		}
	}
	fmt.Println("warning: crash cleanup incomplete within the deadline")
}
