// Storage bidding over PeerWindow, after Cooper & Garcia-Molina's
// data-preservation trading that the paper's introduction and §3 cite:
// "bidding systems can attach nodes' basic status, such as storage
// space, bandwidth, availability, software/hardware summary, approximate
// bid, etc."
//
// Every peer publishes `gb=<free space>;ask=<price per GB>` in its
// pointer. A peer that needs to place replicas runs a sealed-bid
// selection entirely over its local window — cheapest asks first,
// capacity permitting — without a brokerage service or any query
// traffic.
//
// Run with:
//
//	go run ./examples/bidding
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"peerwindow"
)

type offer struct {
	id  string
	gb  int
	ask int // price per GB, arbitrary currency
}

func parseOffer(id string, info []byte) (offer, bool) {
	s := string(info)
	var o offer
	o.id = id
	ok := 0
	for _, field := range strings.Split(s, ";") {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			continue
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			continue
		}
		switch kv[0] {
		case "gb":
			o.gb = v
			ok++
		case "ask":
			o.ask = v
			ok++
		}
	}
	return o, ok == 2
}

func main() {
	opts := peerwindow.Defaults()
	opts.Dilation = 100
	opts.Budget = 1e6
	opts.Seed = 17
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ov.Close()

	sellers := []struct {
		name string
		gb   int
		ask  int
	}{
		{"vault-a", 500, 9},
		{"vault-b", 120, 4},
		{"vault-c", 60, 2},
		{"vault-d", 800, 12},
		{"vault-e", 250, 6},
		{"vault-f", 40, 3},
		{"vault-g", 300, 5},
	}
	for _, s := range sellers {
		info := peerwindow.WithInfo([]byte(fmt.Sprintf("gb=%d;ask=%d", s.gb, s.ask)))
		if _, err := ov.Spawn(s.name, info); err != nil {
			log.Fatalf("spawn %s: %v", s.name, err)
		}
		ov.Settle(20 * time.Second)
	}
	buyer, err := ov.Spawn("buyer")
	if err != nil {
		log.Fatal(err)
	}
	ov.Settle(2 * time.Minute)

	// The buyer wants 400 GB placed as cheaply as possible. TopK over the
	// buyer's View orders the advertised offers by ask in one bounded
	// scan (negated ask turns cheapest-first into the maximization TopK
	// performs); pointers without an offer are excluded by the score
	// function.
	view := buyer.View()
	book := view.TopK(view.Len(), func(r peerwindow.Ref) (float64, bool) {
		o, ok := parseOffer(r.ID(), []byte(r.Info()))
		if !ok {
			return 0, false
		}
		return -float64(o.ask), true
	})
	var offers []offer
	for _, p := range book {
		if o, ok := parseOffer(p.ID, p.Info); ok {
			offers = append(offers, o)
		}
	}

	fmt.Printf("buyer window: %d pointers, %d sellers\n\n", view.Len(), len(offers))
	fmt.Println("order book (from attached info, no queries sent):")
	for _, o := range offers {
		fmt.Printf("  %s…  %4d GB @ %2d/GB\n", o.id[:8], o.gb, o.ask)
	}

	need := 400
	cost := 0
	fmt.Printf("\nplacement for %d GB, cheapest-first:\n", need)
	for _, o := range offers {
		if need <= 0 {
			break
		}
		take := o.gb
		if take > need {
			take = need
		}
		cost += take * o.ask
		need -= take
		fmt.Printf("  %s…  take %3d GB @ %2d/GB\n", o.id[:8], take, o.ask)
	}
	if need > 0 {
		fmt.Printf("unfilled: %d GB (not enough capacity in the window)\n", need)
	}
	fmt.Printf("total cost: %d\n", cost)
}
