// Command pwmodel explores the bounded schedule space of a tiny
// PeerWindow cluster with the internal/model checker: every reordering
// of message deliveries and timers (plus a budget of injected losses)
// within the configured bounds is executed, protocol invariants are
// checked after every step, and each quiescent leaf is audited against
// ground truth. A violation is reported with a minimal replayable
// schedule file.
//
//	pwmodel -scenario join-wave -n 3                 # explore; exit 1 on violation
//	pwmodel -scenario leave-crash -mutate fragile-retry -o sched.json
//	pwmodel -replay sched.json -spans spans.jsonl    # re-execute a counterexample
//	pwtrace spans.jsonl                              # view its causal trace
//
// Exit status: 0 clean, 1 violation found (or replay reproduced one),
// 2 usage or internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"peerwindow/internal/des"
	"peerwindow/internal/model"
	"peerwindow/internal/trace"
)

func main() {
	var (
		scenario = flag.String("scenario", "join-wave", "scenario to explore: "+strings.Join(model.Scenarios(), ", "))
		n        = flag.Int("n", 3, "cluster size (2..8; the space is exponential)")
		seed     = flag.Uint64("seed", 7, "seed for node identities and simulator randomness")
		depth    = flag.Int("depth", 6, "max branch decisions per path")
		drops    = flag.Int("drops", 1, "max injected message losses per path")
		window   = flag.Duration("window", 0, "reorder window (0 = scenario default)")
		settle   = flag.Duration("settle", 0, "leaf drain time before the audit (0 = default)")
		mutate   = flag.String("mutate", "", "deliberately broken config: "+strings.Join(model.Mutations(), ", ")+" (empty = honest)")
		budget   = flag.Duration("budget", 0, "wall-clock budget; exploration stops cleanly when exceeded (0 = none)")
		outFile  = flag.String("o", "", "write the violation's schedule JSON here")
		replayF  = flag.String("replay", "", "replay a schedule file instead of exploring")
		spansF   = flag.String("spans", "", "with -replay: write the replay's causal spans as JSONL (feed to pwtrace)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pwmodel [flags]\n")
		fmt.Fprintf(os.Stderr, "explores the bounded schedule space of a tiny cluster, or replays a recorded schedule\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *replayF != "" {
		os.Exit(replay(*replayF, *spansF))
	}
	if *spansF != "" {
		fmt.Fprintln(os.Stderr, "pwmodel: -spans needs -replay (exploration does not record spans)")
		os.Exit(2)
	}

	opts := model.Options{
		Scenario: *scenario,
		N:        *n,
		Seed:     *seed,
		MaxDepth: *depth,
		MaxDrops: *drops,
		Window:   des.Time(*window),
		Settle:   des.Time(*settle),
		Mutation: *mutate,
	}
	if *budget > 0 {
		// The model package itself is deterministic; the wall clock stays
		// out here in the caller.
		deadline := time.Now().Add(*budget)
		opts.Stop = func() bool { return time.Now().After(deadline) }
	}

	res := model.Check(opts)
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "pwmodel: %v\n", res.Err)
		os.Exit(2)
	}
	printStats(res.Stats)
	if res.Violation == nil {
		if res.Stats.Exhausted {
			fmt.Printf("clean: bounded schedule space exhausted, no violations\n")
		} else {
			fmt.Printf("clean so far: budget exhausted before the space was\n")
		}
		return
	}
	fmt.Printf("VIOLATION: %s at node %d: %s\n",
		res.Violation.Kind, res.Violation.Node, res.Violation.Detail)
	fmt.Printf("schedule: %d recorded decisions\n", len(res.Violation.Schedule.Steps))
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pwmodel: %v\n", err)
			os.Exit(2)
		}
		if err := model.WriteSchedule(f, res.Violation.Schedule); err != nil {
			fmt.Fprintf(os.Stderr, "pwmodel: %v\n", err)
			os.Exit(2)
		}
		f.Close()
		fmt.Printf("schedule written to %s (replay with: pwmodel -replay %s)\n", *outFile, *outFile)
	}
	os.Exit(1)
}

// replay re-executes a schedule file, optionally dumping its causal
// spans, and exits 1 when the recorded violation reproduces.
func replay(schedFile, spansFile string) int {
	f, err := os.Open(schedFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pwmodel: %v\n", err)
		return 2
	}
	sched, err := model.ReadSchedule(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pwmodel: %v\n", err)
		return 2
	}
	var buf *trace.SpanBuffer
	var sink trace.SpanSink
	if spansFile != "" {
		buf = trace.NewSpanBuffer(1 << 16)
		sink = buf
	}
	rep, err := model.Replay(sched, sink)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pwmodel: %v\n", err)
		return 2
	}
	if buf != nil {
		out, err := os.Create(spansFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pwmodel: %v\n", err)
			return 2
		}
		if err := buf.WriteJSONL(out); err != nil {
			fmt.Fprintf(os.Stderr, "pwmodel: %v\n", err)
			return 2
		}
		out.Close()
		fmt.Printf("spans written to %s (view with: pwtrace %s)\n", spansFile, spansFile)
	}
	fmt.Printf("replay: %s/%s n=%d seed=%d steps=%d leaf digest %016x\n",
		sched.Scenario, orHonest(sched.Mutation), sched.N, sched.Seed, len(sched.Steps), rep.Digest)
	if rep.Violation == nil {
		fmt.Printf("clean: the schedule no longer reproduces a violation on this build\n")
		return 0
	}
	fmt.Printf("VIOLATION reproduced: %s at node %d: %s\n",
		rep.Violation.Kind, rep.Violation.Node, rep.Violation.Detail)
	return 1
}

func orHonest(mutation string) string {
	if mutation == "" {
		return "honest"
	}
	return mutation
}

func printStats(st model.Stats) {
	fmt.Printf("explored: %d runs, %d branch points, %d leaves audited\n",
		st.Runs, st.BranchPoints, st.Leaves)
	fmt.Printf("pruned:   %d deduped, %d commuted, %d depth-truncated\n",
		st.Deduped, st.Commuted, st.DepthTruncated)
}
