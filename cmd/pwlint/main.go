// Command pwlint runs the project's static-analysis suite — the
// go/analysis-style checkers in internal/analysis — over the given
// package patterns (default ./...). It exits non-zero when any
// diagnostic survives, so CI can gate on it:
//
//	go run ./cmd/pwlint ./...
//
// Suppress a finding with a //pwlint:allow <analyzer> comment on the
// offending line or the line above it. See docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"peerwindow/internal/analysis"
)

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pwlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pwlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
