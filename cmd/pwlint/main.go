// Command pwlint runs the project's static-analysis suite — the
// go/analysis-style checkers in internal/analysis — over the given
// package patterns (default ./...). It exits non-zero when any
// diagnostic survives, so CI can gate on it:
//
//	go run ./cmd/pwlint -json ./...
//
// -json emits one JSON object per diagnostic (analyzer, position,
// message, and the offending call path for interprocedural findings);
// -v prints per-analyzer wall times to stderr. Suppress a finding with
// a //pwlint:allow <analyzer> comment on the offending line or the line
// above it. See docs/STATIC_ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"peerwindow/internal/analysis"
)

// jsonDiagnostic is the machine-readable shape of one finding.
type jsonDiagnostic struct {
	Analyzer string   `json:"analyzer"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Message  string   `json:"message"`
	Path     []string `json:"path,omitempty"`
}

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line instead of text")
	verbose := flag.Bool("v", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pwlint [-list] [-json] [-v] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwlint:", err)
		os.Exit(2)
	}
	diags, timings, err := analysis.RunTimed(prog, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwlint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "pwlint: %-15s %v\n", t.Name, t.Duration)
		}
	}
	for _, d := range diags {
		if *jsonOut {
			line, err := json.Marshal(jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
				Path:     d.Path,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "pwlint:", err)
				os.Exit(2)
			}
			fmt.Println(string(line))
		} else {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pwlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
