// Command pwtrace reads a causal-span JSONL stream (pwsim -spans, or a
// pwnode /debug/spans scrape), reconstructs each traced multicast tree,
// and reports the paper's §4.2 structural claims per event and in
// aggregate: tree depth ≈ log₂N, root out-degree ≈ log₂N, redundancy
// r = 1, and exact audience coverage.
//
//	pwsim -experiment mcast -n 128 -spans spans.jsonl
//	pwtrace spans.jsonl
//	curl -s localhost:6060/debug/spans | pwtrace -trees 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"peerwindow/internal/des"
	"peerwindow/internal/trace"
)

func main() {
	var (
		treeLimit = flag.Int("trees", 20, "per-event summaries to print (0 = none, -1 = all)")
		minNodes  = flag.Int("min-nodes", 1, "skip trees with fewer delivered nodes")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pwtrace [flags] [spans.jsonl ...]\n")
		fmt.Fprintf(os.Stderr, "reads span JSONL from the named files (or stdin) and prints multicast-tree summaries\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	spans, err := readAll(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pwtrace: %v\n", err)
		os.Exit(1)
	}
	trees := trace.BuildTrees(spans)
	kept := trees[:0]
	for _, t := range trees {
		if len(t.Delivered) >= *minNodes {
			kept = append(kept, t)
		}
	}
	trees = kept

	if *treeLimit != 0 {
		printTrees(trees, *treeLimit)
	}
	printAggregate(spans, trees)
}

// readAll concatenates the span streams of every named file, or stdin
// when no files are given.
func readAll(paths []string) ([]trace.Span, error) {
	if len(paths) == 0 {
		return trace.ReadSpans(os.Stdin)
	}
	var all []trace.Span
	for _, p := range paths {
		var r io.ReadCloser
		var err error
		if p == "-" {
			r = os.Stdin
		} else {
			r, err = os.Open(p)
			if err != nil {
				return nil, err
			}
		}
		spans, err := trace.ReadSpans(r)
		if p != "-" {
			r.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, spans...)
	}
	return all, nil
}

func printTrees(trees []*trace.Tree, limit int) {
	n := len(trees)
	if limit > 0 && n > limit {
		n = limit
	}
	fmt.Printf("%-34s %-12s %6s %6s %6s %8s %7s %6s %6s\n",
		"trace", "event", "nodes", "depth", "rootod", "redund", "dups", "redir", "drops")
	for _, t := range trees[:n] {
		fmt.Printf("%-34s %-12s %6d %6d %6d %8.3f %7d %6d %6d\n",
			shortTrace(t.Trace.String()), t.EventKind.String(),
			len(t.Delivered), t.Depth(), t.RootOutDegree(),
			t.Redundancy(), t.Duplicates, t.Redirects, t.Drops)
	}
	if n < len(trees) {
		fmt.Printf("... and %d more trees (raise -trees)\n", len(trees)-n)
	}
	fmt.Println()
}

// shortTrace compresses the 32-hex origin to a readable prefix, keeping
// the per-origin sequence intact.
func shortTrace(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			if i > 12 {
				return s[:12] + ".." + s[i:]
			}
			return s
		}
	}
	return s
}

func printAggregate(spans []trace.Span, trees []*trace.Tree) {
	st := trace.Aggregate(trees)
	fmt.Printf("trees: %d  (from %d spans)\n", st.Trees, len(spans))
	if st.Trees == 0 {
		return
	}
	fmt.Printf("mean delivered: %.1f nodes  (log2 N = %.2f)\n", st.MeanDelivered, st.Log2N())
	fmt.Printf("depth:          mean %.2f  max %d\n", st.MeanDepth, st.MaxDepth)
	fmt.Printf("root out-deg:   mean %.2f  max %d\n", st.MeanRootOut, st.MaxRootOut)
	fmt.Printf("redundancy:     mean %.3f  (paper: r = 1)\n", st.MeanRedundancy)
	fmt.Printf("redirects: %d  drops: %d\n", st.TotalRedirects, st.TotalDrops)
	fmt.Printf("depth histogram:    %s\n", histogram(trees, func(t *trace.Tree) int { return t.Depth() }))
	fmt.Printf("root-out histogram: %s\n", histogram(trees, func(t *trace.Tree) int { return t.RootOutDegree() }))
	if span := timeSpan(trees); span > 0 {
		fmt.Printf("window: %.3fs of virtual time\n", float64(span)/float64(des.Second))
	}
}

// histogram renders "value:count" pairs in ascending value order.
func histogram(trees []*trace.Tree, f func(*trace.Tree) int) string {
	counts := make(map[int]int)
	for _, t := range trees {
		counts[f(t)]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%d:%d", k, counts[k])
	}
	return out
}

func timeSpan(trees []*trace.Tree) des.Time {
	if len(trees) == 0 {
		return 0
	}
	lo, hi := trees[0].Start, trees[0].End
	for _, t := range trees[1:] {
		if t.Start < lo {
			lo = t.Start
		}
		if t.End > hi {
			hi = t.End
		}
	}
	return hi - lo
}
