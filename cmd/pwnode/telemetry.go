package main

// The -telemetry-addr push path: a telemetry.Exporter flushing this
// node's instruments, beacon and spans to a pwcollect UDP address on a
// jittered wall-clock loop. When the flag is unset nothing here runs —
// the node pays zero telemetry cost.

import (
	"fmt"
	"net"
	"time"

	"peerwindow/internal/telemetry"
	"peerwindow/internal/udptransport"
)

// telemetrySpanCapacity bounds the span buffer drained by the exporter
// when tracing was not already enabled by -debug-addr.
const telemetrySpanCapacity = 8192

// startTelemetry dials the collector and starts the flush loop. Closing
// the returned stop channel triggers one final flush; done closes when
// it has been sent.
func startTelemetry(addr string, interval time.Duration, name string, n *udptransport.Node) (stop, done chan struct{}, err error) {
	raddr, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("pwnode: telemetry: %w", err)
	}
	conn, err := net.DialUDP("udp4", nil, raddr)
	if err != nil {
		return nil, nil, fmt.Errorf("pwnode: telemetry: %w", err)
	}

	self := n.Self()
	e := telemetry.NewExporter(telemetry.ExporterConfig{
		Node:  self.Addr,
		Name:  name,
		ID:    self.ID,
		Spans: n.EnableSpans(telemetrySpanCapacity),
	}, udpSink{conn})

	stop = make(chan struct{})
	done = make(chan struct{})
	go func() {
		defer close(done)
		defer conn.Close()
		e.Run(telemetry.LiveConfig{
			Interval: interval,
			Now:      n.Now,
			Snapshot: n.MetricsSnapshot,
			Beacon: func() telemetry.Beacon {
				return telemetry.Beacon{
					Name:   name,
					ID:     self.ID,
					Level:  n.Level(),
					Window: len(n.Pointers()),
				}
			},
		}, stop)
	}()
	return stop, done, nil
}

// udpSink sends each frame as one datagram. A full socket buffer (or a
// transient network error) reports back as a refused frame, so the
// exporter re-buffers the deltas instead of losing them.
type udpSink struct{ conn *net.UDPConn }

func (s udpSink) Send(b []byte) error {
	_, err := s.conn.Write(b)
	return err
}
