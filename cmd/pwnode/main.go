// Command pwnode runs one PeerWindow node over real UDP — the
// deployable form of the protocol. Start a first node, then point
// others at it:
//
//	pwnode -listen 127.0.0.1:7001 -name seed &
//	pwnode -listen 127.0.0.1:7002 -name alice -join 127.0.0.1:7001 -info os=linux &
//	pwnode -listen 127.0.0.1:7003 -name bob   -join 127.0.0.1:7001 &
//
// Each node prints its window periodically; SIGINT/SIGTERM triggers a
// polite leave (the departure is multicast before the socket closes).
// The -fast flag compresses the protocol timers ~50× for local demos.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peerwindow/internal/core"
	"peerwindow/internal/des"
	"peerwindow/internal/udptransport"
	"peerwindow/internal/wire"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "UDP address to bind")
		join      = flag.String("join", "", "bootstrap host:port (empty: start a fresh overlay)")
		name      = flag.String("name", "", "node name (seeds the identifier; default: the bind address)")
		budget    = flag.Float64("budget", 5000, "collection budget in bit/s")
		info      = flag.String("info", "", "application info to attach to the pointer")
		interval  = flag.Duration("interval", 10*time.Second, "status print interval")
		fast      = flag.Bool("fast", false, "compress protocol timers ~50x for local demos")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/window, /debug/query, /debug/trace, /debug/spans and /debug/pprof over HTTP on this address (empty: disabled)")
		telemAddr = flag.String("telemetry-addr", "", "push telemetry frames to a pwcollect UDP address (empty: disabled, zero overhead)")
		telemIvl  = flag.Duration("telemetry-interval", 2*time.Second, "telemetry flush interval (jittered ±20%)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *fast {
		cfg.ProbeInterval = 600 * des.Millisecond
		cfg.ProbeTimeout = 150 * des.Millisecond
		cfg.AckTimeout = 150 * des.Millisecond
		cfg.ForwardDelay = 20 * des.Millisecond
		cfg.ShiftCheckInterval = 2 * des.Second
		cfg.MeterWindow = 4 * des.Second
		cfg.ReconcileDelay = 1 * des.Second
	}
	nodeName := *name
	if nodeName == "" {
		nodeName = *listen
	}
	n, err := udptransport.Listen(*listen, nodeName, *budget, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	self := n.Self()
	ip, port := self.Addr.IPv4()
	fmt.Printf("pwnode %s: listening on %d.%d.%d.%d:%d id=%s\n",
		nodeName, ip[0], ip[1], ip[2], ip[3], port, self.ID)

	if *debugAddr != "" {
		ln, err := startDebugServer(*debugAddr, nodeName, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("debug server on http://%s (/metrics, /debug/window, /debug/query, /debug/trace, /debug/spans)\n", ln.Addr())
	}

	var telemStop chan struct{}
	var telemDone chan struct{}
	if *telemAddr != "" {
		stop, done, err := startTelemetry(*telemAddr, *telemIvl, nodeName, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		telemStop, telemDone = stop, done
		fmt.Printf("telemetry to udp://%s every %v\n", *telemAddr, *telemIvl)
	}

	if *join == "" {
		n.Bootstrap()
		fmt.Println("bootstrapped a fresh overlay")
	} else {
		boot, err := resolvePointer(*join)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := n.Join(boot, 30*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "join %s: %v\n", *join, err)
			os.Exit(1)
		}
		fmt.Printf("joined via %s at level %d\n", *join, n.Level())
	}
	if *info != "" {
		n.SetInfo([]byte(*info))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			ps := n.Pointers()
			sent, recv := n.Counters()
			fmt.Printf("window=%d level=%d datagrams out/in=%d/%d\n",
				len(ps), n.Level(), sent, recv)
			for _, p := range ps {
				pip, pport := p.Addr.IPv4()
				fmt.Printf("  %s… %d.%d.%d.%d:%d L%d %q\n",
					p.ID.String()[:8], pip[0], pip[1], pip[2], pip[3], pport,
					p.Level, p.Info)
			}
		case <-sig:
			fmt.Println("leaving politely…")
			n.Leave()
			if telemStop != nil {
				// One final flush so the collector sees the shutdown totals.
				close(telemStop)
				<-telemDone
			}
			return
		}
	}
}

// resolvePointer builds a bootstrap pointer from host:port. Only the
// address matters for the first message; the bootstrap's identity is
// learned from its replies.
func resolvePointer(hostport string) (wire.Pointer, error) {
	addr, err := net.ResolveUDPAddr("udp4", hostport)
	if err != nil {
		return wire.Pointer{}, fmt.Errorf("pwnode: %w", err)
	}
	ip4 := addr.IP.To4()
	if ip4 == nil {
		return wire.Pointer{}, fmt.Errorf("pwnode: %s is not IPv4", hostport)
	}
	var ip [4]byte
	copy(ip[:], ip4)
	return wire.Pointer{Addr: wire.AddrFromIPv4(ip, uint16(addr.Port))}, nil
}
