package main

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"peerwindow/internal/des"
	"peerwindow/internal/telemetry"
	"peerwindow/internal/udptransport"
)

// collectUDP runs a pwcollect-style ingest loop on an ephemeral port.
func collectUDP(t *testing.T) (*telemetry.Collector, string, func()) {
	t.Helper()
	start := time.Now()
	c := telemetry.NewCollector(telemetry.CollectorConfig{
		Clock:  func() des.Time { return des.Time(time.Since(start)) },
		Health: telemetry.HealthConfig{BeaconInterval: des.Time(200 * time.Millisecond)},
	})
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			c.Ingest(buf[:n])
		}
	}()
	return c, conn.LocalAddr().String(), func() { conn.Close() }
}

// TestTelemetryPushOverUDP is the live-path smoke: a real node pushes
// frames through the udpSink at a real collector ingest loop, and the
// collector's totals and health reflect the node within a deadline.
func TestTelemetryPushOverUDP(t *testing.T) {
	c, addr, closeUDP := collectUDP(t)
	defer closeUDP()

	node, err := udptransport.Listen("127.0.0.1:0", "seed", 0, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Bootstrap()

	stop, done, err := startTelemetry(addr, 100*time.Millisecond, "seed", node)
	if err != nil {
		t.Fatal(err)
	}

	// A solo bootstrapped node increments few counters, so wait on frame
	// arrival (two, so a beacon gap is measurable), not on counter totals.
	deadline := time.Now().Add(5 * time.Second)
	var seen bool
	for time.Now().Before(deadline) {
		if received, _, _, _, ok := c.NodeStats(node.Self().Addr); ok && received >= 2 {
			seen = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !seen {
		t.Fatalf("collector never saw two frames from the node")
	}

	doc := c.Health()
	if len(doc.Nodes) != 1 || doc.Nodes[0].Name != "seed" {
		t.Fatalf("health doc: %+v", doc.Nodes)
	}

	// Stop triggers a final flush; totals then match the node's own
	// snapshot exactly (counters are exact over the delta protocol).
	close(stop)
	<-done
	want := node.MetricsSnapshot()
	got, _ := c.NodeTotals(node.Self().Addr)
	for name, w := range want.Counters {
		if got.Counters[name] != w {
			t.Fatalf("counter %s: collector %d, node %d", name, got.Counters[name], w)
		}
	}
}

// TestDebugServerPprof: the profiler index and a heap profile are
// served from the -debug-addr mux.
func TestDebugServerPprof(t *testing.T) {
	node, err := udptransport.Listen("127.0.0.1:0", "seed", 0, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ln, err := startDebugServer("127.0.0.1:0", "seed", node)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	base := fmt.Sprintf("http://%s", ln.Addr())
	index := httpGet(t, base+"/debug/pprof/")
	if !strings.Contains(index, "heap") || !strings.Contains(index, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%.400s", index)
	}
	heap := httpGet(t, base+"/debug/pprof/heap?debug=1")
	if !strings.Contains(heap, "heap profile") {
		t.Fatalf("heap profile malformed:\n%.200s", heap)
	}
}
