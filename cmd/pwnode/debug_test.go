package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"peerwindow/internal/core"
	"peerwindow/internal/des"
	"peerwindow/internal/udptransport"
)

// fastConfig mirrors the -fast flag: timers compressed ~50× so a
// two-node overlay settles within a test's patience.
func fastConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ProbeInterval = 600 * des.Millisecond
	cfg.ProbeTimeout = 150 * des.Millisecond
	cfg.AckTimeout = 150 * des.Millisecond
	cfg.ForwardDelay = 20 * des.Millisecond
	cfg.ShiftCheckInterval = 2 * des.Second
	cfg.MeterWindow = 4 * des.Second
	cfg.ReconcileDelay = 1 * des.Second
	return cfg
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

// TestDebugServerSmoke is the end-to-end observability smoke test: boot
// a two-node overlay over real UDP, scrape /metrics, and check that the
// debug documents are well-formed and non-trivial.
func TestDebugServerSmoke(t *testing.T) {
	seed, err := udptransport.Listen("127.0.0.1:0", "seed", 0, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	ln, err := startDebugServer("127.0.0.1:0", "seed", seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	seed.Bootstrap()

	other, err := udptransport.Listen("127.0.0.1:0", "other", 0, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Join(seed.Self(), 10*time.Second); err != nil {
		t.Fatalf("join: %v", err)
	}

	// Let the join multicast land in seed's window.
	deadline := time.Now().Add(5 * time.Second)
	for len(seed.Pointers()) == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}

	base := fmt.Sprintf("http://%s", ln.Addr())

	metrics := httpGet(t, base+"/metrics")
	if !strings.Contains(metrics, "pw_net_send_") {
		t.Fatalf("/metrics missing pw_net_send_* counters:\n%s", metrics)
	}
	if !strings.Contains(metrics, "pw_peers_added") {
		t.Fatalf("/metrics missing pw_peers_added:\n%s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE") {
		t.Fatalf("/metrics missing TYPE comments:\n%s", metrics)
	}
	var exposed int
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "pw_") {
			exposed++
		}
	}
	if exposed < 10 {
		t.Fatalf("/metrics exposes %d pw_ samples, want >= 10", exposed)
	}

	var doc struct {
		Name   string `json:"name"`
		ID     string `json:"id"`
		Level  int    `json:"level"`
		Window []struct {
			ID    string `json:"id"`
			Addr  string `json:"addr"`
			Level int    `json:"level"`
		} `json:"window"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/window")), &doc); err != nil {
		t.Fatalf("/debug/window is not JSON: %v", err)
	}
	if doc.Name != "seed" || doc.ID == "" {
		t.Fatalf("/debug/window identity wrong: %+v", doc)
	}
	if len(doc.Window) != 1 {
		t.Fatalf("/debug/window has %d pointers, want 1", len(doc.Window))
	}

	var qdoc struct {
		Name      string         `json:"name"`
		Epoch     uint64         `json:"epoch"`
		Entries   int            `json:"entries"`
		MinLevel  int            `json:"min_level"`
		Levels    map[string]int `json:"levels"`
		Strongest []struct {
			ID    string `json:"id"`
			Level int    `json:"level"`
		} `json:"strongest"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/query")), &qdoc); err != nil {
		t.Fatalf("/debug/query is not JSON: %v", err)
	}
	if qdoc.Name != "seed" {
		t.Fatalf("/debug/query name = %q, want seed", qdoc.Name)
	}
	if qdoc.Entries != 1 || qdoc.Epoch == 0 {
		t.Fatalf("/debug/query entries=%d epoch=%d, want 1 entry at epoch >= 1", qdoc.Entries, qdoc.Epoch)
	}
	if len(qdoc.Strongest) != 1 || qdoc.Strongest[0].ID == "" {
		t.Fatalf("/debug/query strongest wrong: %+v", qdoc.Strongest)
	}
	var levelSum int
	for _, c := range qdoc.Levels {
		levelSum += c
	}
	if levelSum != qdoc.Entries {
		t.Fatalf("/debug/query level histogram sums to %d, want %d", levelSum, qdoc.Entries)
	}
	if _, ok := qdoc.Counters["query.deltas.add"]; !ok {
		t.Fatalf("/debug/query counters missing query.deltas.add: %+v", qdoc.Counters)
	}
	if qdoc.Counters["query.deltas.add"] == 0 {
		t.Fatalf("/debug/query shows zero adds after a join: %+v", qdoc.Counters)
	}

	trace := httpGet(t, base+"/debug/trace")
	if !strings.Contains(trace, "events recorded") {
		t.Fatalf("/debug/trace header missing:\n%s", trace)
	}
}
