package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"peerwindow/internal/query"
	"peerwindow/internal/udptransport"
	"peerwindow/internal/wire"
)

// This file implements the -debug-addr observability surface:
//
//	/metrics       Prometheus text exposition of every instrument
//	/debug/window  the current window as JSON
//	/debug/query   the query-plane snapshot state: epoch, entry and
//	               bucket counts, level histogram, strongest peers,
//	               delta and subscription counters
//	/debug/trace   the retained event ring, newest last, as plain text
//	/debug/spans   the retained causal spans as JSONL (pipe to pwtrace)
//	/debug/pprof/  the standard Go profiler endpoints (CPU, heap,
//	               goroutine, block, mutex); see docs/OBSERVABILITY.md
//	               for the capture recipes
//
// The endpoints read through the node's executor, so they are safe to
// scrape while the protocol runs; they are meant for localhost
// diagnostics, not for exposure to the open internet.

// debugTraceCapacity is the event ring retained for /debug/trace when
// the debug server is enabled.
const debugTraceCapacity = 4096

// debugSpanCapacity bounds the span buffer behind /debug/spans. Spans
// only accrue for traced multicasts touching this node, so the buffer
// covers a long window of activity.
const debugSpanCapacity = 8192

// pointerJSON is one window entry in /debug/window output.
type pointerJSON struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Level int    `json:"level"`
	Info  string `json:"info,omitempty"`
}

// windowJSON is the /debug/window document.
type windowJSON struct {
	Name   string        `json:"name"`
	ID     string        `json:"id"`
	Addr   string        `json:"addr"`
	Level  int           `json:"level"`
	Window []pointerJSON `json:"window"`
}

// queryJSON is the /debug/query document.
type queryJSON struct {
	Name      string            `json:"name"`
	Epoch     uint64            `json:"epoch"`
	Entries   int               `json:"entries"`
	MinLevel  int               `json:"min_level"`
	Levels    map[string]int    `json:"levels"`
	Strongest []pointerJSON     `json:"strongest"`
	Counters  map[string]uint64 `json:"counters"`
}

// endpoint renders a wire address as dotted-quad host:port.
func endpoint(a wire.Addr) string {
	ip, port := a.IPv4()
	return fmt.Sprintf("%d.%d.%d.%d:%d", ip[0], ip[1], ip[2], ip[3], port)
}

// startDebugServer binds addr and serves the debug endpoints for n in a
// background goroutine. It returns the bound listener so callers (and
// tests) learn the effective port when addr ends in :0.
func startDebugServer(addr, name string, n *udptransport.Node) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pwnode: debug server: %w", err)
	}
	n.EnableTrace(debugTraceCapacity)
	n.EnableSpans(debugSpanCapacity)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.MetricsSnapshot().WritePrometheus(w, "pw")
	})
	mux.HandleFunc("/debug/window", func(w http.ResponseWriter, r *http.Request) {
		self := n.Self()
		doc := windowJSON{
			Name:   name,
			ID:     self.ID.String(),
			Addr:   endpoint(self.Addr),
			Level:  n.Level(),
			Window: []pointerJSON{},
		}
		for _, p := range n.Pointers() {
			doc.Window = append(doc.Window, pointerJSON{
				ID:    p.ID.String(),
				Addr:  endpoint(p.Addr),
				Level: int(p.Level),
				Info:  string(p.Info),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/query", func(w http.ResponseWriter, r *http.Request) {
		store := n.Query()
		v := store.View()
		doc := queryJSON{
			Name:      name,
			Epoch:     v.Epoch(),
			Entries:   v.Len(),
			MinLevel:  v.MinLevel(),
			Levels:    map[string]int{},
			Strongest: []pointerJSON{},
		}
		for l := 0; l <= 64; l++ {
			if c := v.CountAtLevel(l); c > 0 {
				doc.Levels[fmt.Sprintf("%d", l)] = c
			}
		}
		for _, e := range v.Strongest(8) {
			doc.Strongest = append(doc.Strongest, pointerJSON{
				ID:    e.ID.String(),
				Addr:  endpoint(e.Addr),
				Level: int(e.Level),
				Info:  e.Info(),
			})
		}
		snap := store.MetricsSnapshot()
		doc.Counters = map[string]uint64{
			query.MetricQueryDeltasAdd:     snap.Counters[query.MetricQueryDeltasAdd],
			query.MetricQueryDeltasUpdate:  snap.Counters[query.MetricQueryDeltasUpdate],
			query.MetricQueryDeltasRemove:  snap.Counters[query.MetricQueryDeltasRemove],
			query.MetricQuerySubsDelivered: snap.Counters[query.MetricQuerySubsDelivered],
			query.MetricQuerySubsDropped:   snap.Counters[query.MetricQuerySubsDropped],
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ring := n.TraceRing()
		if ring == nil {
			fmt.Fprintln(w, "trace ring not enabled")
			return
		}
		fmt.Fprintf(w, "# %d events recorded, newest last\n", ring.Total())
		ring.Dump(w)
	})

	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		buf := n.Spans()
		if buf == nil {
			http.Error(w, "span buffer not enabled", http.StatusNotFound)
			return
		}
		buf.WriteJSONL(w)
	})

	// The profiler endpoints register on http.DefaultServeMux via the
	// pprof package's init; mount them on this private mux explicitly so
	// nothing else riding DefaultServeMux is exposed by accident.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln, nil
}
