// Command pwtop is a live terminal dashboard over a pwcollect /health
// feed: one row per node (level, window size, events/sec, staleness,
// health score, alerts), refreshed in place, with the cluster alert
// lines at the bottom.
//
//	pwtop -collector http://127.0.0.1:7101
//	pwtop -collector http://127.0.0.1:7101 -sort events
//	pwtop -once            # print one snapshot and exit (CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"peerwindow/internal/telemetry"
)

func main() {
	var (
		collector = flag.String("collector", "http://127.0.0.1:7101", "pwcollect base URL")
		interval  = flag.Duration("interval", 2*time.Second, "refresh interval")
		sortKey   = flag.String("sort", "health", "row order: health | addr | events | level | window")
		once      = flag.Bool("once", false, "print one snapshot without screen control and exit")
	)
	flag.Parse()

	if *once {
		if err := render(os.Stdout, *collector, *sortKey, false); err != nil {
			fmt.Fprintln(os.Stderr, "pwtop:", err)
			os.Exit(1)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if err := render(os.Stdout, *collector, *sortKey, true); err != nil {
			// The collector may be restarting; show the error where the
			// table was and keep polling.
			fmt.Printf("\x1b[2J\x1b[Hpwtop: %v (retrying)\n", err)
		}
		select {
		case <-tick.C:
		case <-sig:
			fmt.Println()
			return
		}
	}
}

// fetch pulls and decodes the /health document.
func fetch(base string) (telemetry.HealthDoc, error) {
	var doc telemetry.HealthDoc
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/health")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("/health: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return doc, fmt.Errorf("/health: %w", err)
	}
	return doc, nil
}

// render writes one table. clear=true prefixes ANSI clear-screen so the
// table refreshes in place.
func render(w io.Writer, base, sortKey string, clear bool) error {
	doc, err := fetch(base)
	if err != nil {
		return err
	}
	orderRows(doc.Nodes, sortKey)

	var b strings.Builder
	if clear {
		b.WriteString("\x1b[2J\x1b[H")
	}
	fmt.Fprintf(&b, "pwtop — %d nodes, beacon %.1fs, collector uptime %.0fs\n\n",
		len(doc.Nodes), doc.BeaconSeconds, doc.AtSeconds)
	fmt.Fprintf(&b, "%-18s %5s %6s %9s %8s %7s  %s\n",
		"NODE", "LVL", "WIN", "EV/S", "SEEN(s)", "HEALTH", "ALERTS")
	for _, n := range doc.Nodes {
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("node-%d", n.Addr)
		}
		if len(name) > 18 {
			name = name[:18]
		}
		fmt.Fprintf(&b, "%-18s %5d %6d %9.1f %8.1f %7.0f  %s\n",
			name, n.Level, n.Window, n.EventsPerSec, n.LastSeenSeconds,
			n.Health, strings.Join(n.Alerts, ","))
	}
	b.WriteString("\n")
	if len(doc.Alerts) == 0 {
		b.WriteString("alerts: none\n")
	}
	for _, a := range doc.Alerts {
		fmt.Fprintf(&b, "alerts: %s\n", a)
	}
	_, err = io.WriteString(w, b.String())
	return err
}

// orderRows sorts the table. Ties (and the default) fall back to the
// address so the layout is stable between refreshes.
func orderRows(nodes []telemetry.NodeHealth, key string) {
	sort.SliceStable(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		switch key {
		case "events":
			if a.EventsPerSec != b.EventsPerSec {
				return a.EventsPerSec > b.EventsPerSec
			}
		case "level":
			if a.Level != b.Level {
				return a.Level > b.Level
			}
		case "window":
			if a.Window != b.Window {
				return a.Window > b.Window
			}
		case "health":
			if a.Health != b.Health {
				return a.Health < b.Health // sickest first
			}
		}
		return a.Addr < b.Addr
	})
}
