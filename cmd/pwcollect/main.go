// Command pwcollect is the cluster telemetry collector: it ingests the
// delta-encoded frames pwnode exporters push over UDP and serves the
// aggregated cluster view over HTTP:
//
//	/metrics     cluster-wide Prometheus exposition (all nodes merged,
//	             plus the collector's own telemetry.* instruments)
//	/timeseries  per-node sample windows, JSON or CSV
//	/health      per-node health scores and alert lines (pwtop's feed)
//
// Point nodes at it:
//
//	pwcollect -listen 127.0.0.1:7100 -http 127.0.0.1:7101 &
//	pwnode -listen 127.0.0.1:7001 -name seed -telemetry-addr 127.0.0.1:7100 &
//
// The -beacon flag must match the nodes' -telemetry-interval: staleness
// (and therefore crash detection) is measured in units of it.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peerwindow/internal/des"
	"peerwindow/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7100", "UDP address to receive telemetry frames on")
		httpAddr = flag.String("http", "127.0.0.1:7101", "HTTP address for /metrics, /timeseries and /health")
		beacon   = flag.Duration("beacon", 2*time.Second, "expected exporter flush interval (staleness unit)")
		ring     = flag.Int("ring", 512, "timeseries samples retained per node")
		spans    = flag.Int("spans", 16384, "spans retained across all nodes (0: disable)")
		interval = flag.Duration("interval", 30*time.Second, "status print interval (0: quiet)")
	)
	flag.Parse()

	start := time.Now()
	c := telemetry.NewCollector(telemetry.CollectorConfig{
		Clock:        func() des.Time { return des.Time(time.Since(start)) },
		RingCapacity: *ring,
		SpanCapacity: *spans,
		Health:       telemetry.HealthConfig{BeaconInterval: des.Time(*beacon)},
	})

	uaddr, err := net.ResolveUDPAddr("udp4", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwcollect:", err)
		os.Exit(1)
	}
	conn, err := net.ListenUDP("udp4", uaddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwcollect:", err)
		os.Exit(1)
	}
	defer conn.Close()

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwcollect:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)

	fmt.Printf("pwcollect: frames on udp://%s, http://%s (/metrics, /timeseries, /health)\n",
		conn.LocalAddr(), ln.Addr())

	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // socket closed on shutdown
			}
			// Ingest copies what it keeps; decode errors are counted in
			// telemetry.frames_bad and are not fatal.
			c.Ingest(buf[:n])
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var tick <-chan time.Time
	if *interval > 0 {
		t := time.NewTicker(*interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			doc := c.Health()
			self := c.SelfMetrics()
			fmt.Printf("nodes=%d frames=%d missing=%d bad=%d spans=%d alerts=%d\n",
				len(doc.Nodes),
				self.Counters[telemetry.MetricTelemetryFramesReceived],
				self.Counters[telemetry.MetricTelemetryFramesMissing],
				self.Counters[telemetry.MetricTelemetryFramesBad],
				self.Counters[telemetry.MetricTelemetrySpansReceived],
				len(doc.Alerts))
			for _, a := range doc.Alerts {
				fmt.Println("  alert:", a)
			}
		case <-sig:
			return
		}
	}
}
