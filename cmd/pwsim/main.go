// Command pwsim reproduces the paper's evaluation (§5): every figure is
// an experiment id, and each run prints the corresponding table.
//
//	pwsim -experiment fig5                 # node distribution, common 100k run
//	pwsim -experiment fig9 -scales 5000,20000,100000
//	pwsim -experiment fig12 -rates 0.1,0.5,1,2,10
//	pwsim -experiment intro                # §1/§2 probing-vs-multicast economics
//	pwsim -experiment mcast -n 64          # §4.2 multicast properties (full fidelity)
//	pwsim -experiment sharded -shards 8 -digest   # common run on the sharded SoA engine
//	pwsim -experiment million -shards 8    # seeded 1M-node churn run
//	pwsim -experiment all                  # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"peerwindow/internal/baseline"
	"peerwindow/internal/core"
	"peerwindow/internal/des"
	"peerwindow/internal/metrics"
	"peerwindow/internal/sim"
	"peerwindow/internal/trace"
	"peerwindow/internal/wire"
	"peerwindow/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig5..fig12, common, fullcommon, sharded, million, intro, mcast, delay, split, or all")
		n          = flag.Int("n", 100000, "system scale for the common experiment")
		seed       = flag.Uint64("seed", 1, "random seed")
		warmMin    = flag.Int("warm", 30, "settle time before measuring (virtual minutes)")
		measureMin = flag.Int("measure", 30, "measurement window (virtual minutes)")
		rate       = flag.Float64("rate", 1.0, "Lifetime_Rate for the common experiment")
		scalesFlag = flag.String("scales", "5000,10000,20000,50000,100000", "scales for fig9/fig10")
		ratesFlag  = flag.String("rates", "0.1,0.2,0.5,1,2,5,10", "lifetime rates for fig11/fig12")
		spansFile  = flag.String("spans", "", "write causal-span JSONL here (mcast experiment; feed to pwtrace)")
		shards     = flag.Int("shards", 1, "engine shards for sharded/million (power of two in [1,256])")
		workers    = flag.Int("workers", 0, "worker goroutines driving shards (0 = GOMAXPROCS)")
		digest     = flag.Bool("digest", false, "print the end-state digest (determinism checks across -shards)")
	)
	flag.Parse()

	opt := sim.CommonOptions{
		Warm:    des.Time(*warmMin) * des.Minute,
		Measure: des.Time(*measureMin) * des.Minute,
	}

	switch *experiment {
	case "fig5", "fig6", "fig7", "fig8", "common":
		r := sim.RunCommon(*n, *rate, *seed, opt)
		switch *experiment {
		case "fig5":
			fmt.Println(sim.Fig5Table(r).Render())
		case "fig6":
			fmt.Println(sim.Fig6Table(r).Render())
		case "fig7":
			fmt.Println(sim.Fig7Table(r).Render())
		case "fig8":
			fmt.Println(sim.Fig8Table(r).Render())
		default:
			printCommon(r)
		}
	case "fig9", "fig10":
		rs := sim.RunScales(parseInts(*scalesFlag), *seed, opt)
		if *experiment == "fig9" {
			fmt.Println(sim.Fig9Table(rs).Render())
		} else {
			fmt.Println(sim.Fig10Table(rs).Render())
		}
	case "fig11", "fig12":
		rr := sim.RunLifetimeRates(*n, parseFloats(*ratesFlag), *seed, opt)
		if *experiment == "fig11" {
			fmt.Println(sim.Fig11Table(rr).Render())
		} else {
			fmt.Println(sim.Fig12Table(rr).Render())
		}
	case "sharded":
		r, dg := sim.RunCommonSharded(*n, *rate, *seed, *shards, *workers, opt)
		printCommon(r)
		if *digest {
			fmt.Printf("digest %016x\n", dg)
		}
	case "million":
		mn := *n
		if mn < 1000000 {
			mn = 1000000
		}
		fmt.Println(millionTable(mn, *rate, *seed, *shards, *workers, opt, *digest).Render())
	case "intro":
		fmt.Println(introTable().Render())
	case "mcast":
		fmt.Println(mcastTable(*n, *seed, *spansFile).Render())
	case "fullcommon":
		fn := *n
		if fn > 1500 {
			fn = 1500 // full fidelity: peer lists are O(N) per node
		}
		wl := workloadForFull()
		r := sim.RunCommonFull(fn, wl, *seed,
			des.Time(*warmMin)*des.Minute, des.Time(*measureMin)*des.Minute)
		printCommon(r)
	case "split":
		fmt.Println(splitTable(*seed).Render())
	case "delay":
		dn := *n
		if dn > 128 {
			dn = 128 // full fidelity
		}
		fmt.Println(sim.DelayTable(sim.MeasureMulticastDelay(dn, 5, *seed)).Render())
	case "all":
		r := sim.RunCommon(*n, *rate, *seed, opt)
		printCommon(r)
		rs := sim.RunScales(parseInts(*scalesFlag), *seed, opt)
		fmt.Println(sim.Fig9Table(rs).Render())
		fmt.Println(sim.Fig10Table(rs).Render())
		rr := sim.RunLifetimeRates(*n, parseFloats(*ratesFlag), *seed, opt)
		fmt.Println(sim.Fig11Table(rr).Render())
		fmt.Println(sim.Fig12Table(rr).Render())
		fmt.Println(introTable().Render())
		mn := *n
		if mn > 64 {
			mn = 64
		}
		fmt.Println(mcastTable(mn, *seed, *spansFile).Render())
		fmt.Println(sim.DelayTable(sim.MeasureMulticastDelay(96, 5, *seed)).Render())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

// millionTable runs the common experiment at million-node scale on the
// sharded struct-of-arrays simulator and reports throughput and memory
// alongside the level census — the scale the legacy pointer-per-node
// layout cannot reach in RAM.
func millionTable(n int, rate float64, seed uint64, shards, workers int, opt sim.CommonOptions, digest bool) *metrics.Table {
	cfg := sim.DefaultShardedScaledConfig(n, seed, shards)
	cfg.Workers = workers
	cfg.Workload.LifetimeRate = rate
	build0 := time.Now()
	s := sim.NewShardedScaled(cfg)
	buildWall := time.Since(build0)
	if opt.Warm == 0 {
		opt.Warm = 30 * des.Minute
	}
	if opt.Measure == 0 {
		opt.Measure = 30 * des.Minute
	}
	run0 := time.Now()
	s.Run(opt.Warm)
	s.ResetTraffic()
	s.Run(opt.Measure)
	runWall := time.Since(run0)
	events := s.EventsExecuted()
	bytes, nodes := s.MemoryFootprint()

	t := metrics.NewTable(
		fmt.Sprintf("Million-node churn run (sharded SoA, N=%d, shards=%d)", n, shards),
		"metric", "value")
	t.AddRow("population", s.Population())
	t.AddRow("virtual time", (opt.Warm + opt.Measure).String())
	t.AddRow("build wall time", buildWall.Round(time.Millisecond).String())
	t.AddRow("run wall time", runWall.Round(time.Millisecond).String())
	t.AddRow("events executed", events)
	t.AddRow("events/sec (wall)", fmt.Sprintf("%.0f", float64(events)/runWall.Seconds()))
	t.AddRow("node-state bytes/node", fmt.Sprintf("%.1f", float64(bytes)/float64(nodes)))
	levels := s.LevelCounts()
	for l, c := range levels {
		if c > 0 {
			t.AddRow(fmt.Sprintf("level %d nodes", l), c)
		}
	}
	if digest {
		t.AddRow("digest", fmt.Sprintf("%016x", s.Digest()))
	}
	return t
}

// workloadForFull compresses lifetimes so a short full-fidelity run sees
// meaningful churn.
func workloadForFull() workload.Config {
	wl := workload.DefaultConfig()
	wl.MeanLifetime = 15 * des.Minute
	return wl
}

func printCommon(r sim.CommonResult) {
	fmt.Println(sim.Fig5Table(r).Render())
	fmt.Println(sim.Fig6Table(r).Render())
	fmt.Println(sim.Fig7Table(r).Render())
	fmt.Println(sim.Fig8Table(r).Render())
}

// introTable reproduces the §1/§2 economics: explicit probing versus
// PeerWindow, with the paper's own example numbers.
func introTable() *metrics.Table {
	hb := baseline.DefaultHeartbeatParams()
	t := metrics.NewTable("Intro — node collection economics (paper §1/§2 examples)",
		"metric", "explicit probing", "peerwindow")
	t.AddRow("wasted probes (2h lifetime, 30s probes)",
		fmt.Sprintf("%.2f%%", 100*hb.WastedFraction()), "0% (event-driven)")
	t.AddRow("cost per 1000 pointers (bit/s)",
		fmt.Sprintf("%.0f", hb.CostPer1000()),
		fmt.Sprintf("%.0f", baseline.PeerWindowCostPer1000(des.Hour, 3, 1, 1000)))
	hbHour := hb
	hbHour.MeanLifetime = des.Hour
	c := baseline.CompareIntro(hbHour, 5000, 3, 1, 1000)
	t.AddRow("pointers within a 5 kbit/s budget (1h lifetime)",
		fmt.Sprintf("%.0f", c.HeartbeatPointers),
		fmt.Sprintf("%.0f", c.PeerWindowPointers))
	t.AddRow("advantage", "1×", fmt.Sprintf("%.1f×", c.Advantage))

	// Gossip vs tree dissemination (the §2 design alternative).
	gs := &baseline.GossipSim{Params: baseline.DefaultGossipParams(), Members: 4096}
	gs.Run(1)
	msgs, r, complete := baseline.TreeDissemination(4096, gs.Params.StepCost)
	t.AddRow("dissemination redundancy (4096 members)",
		fmt.Sprintf("gossip %.2f msg/member", gs.Redundancy),
		fmt.Sprintf("tree %.2f msg/member", r))
	t.AddRow("dissemination messages",
		fmt.Sprintf("%d", gs.Messages), fmt.Sprintf("%d", msgs))
	t.AddRow("dissemination completion",
		gs.CompleteAt.String(), complete.String())

	// One-hop DHT (§6 related work): every member pays the full event
	// stream; PeerWindow's weak nodes pay only their budget.
	oh := baseline.DefaultOneHopParams(100000)
	wl := workload.DefaultConfig()
	t.AddRow("100k-node membership cost for a weak node",
		fmt.Sprintf("one-hop DHT %.0f bit/s", oh.CostPerNode()),
		fmt.Sprintf("peerwindow %.0f bit/s (its budget)", wl.ThresholdFloor))
	frac := oh.AffordableFraction(func(q float64) float64 {
		return wl.Threshold(wl.Bandwidth.Quantile(q))
	})
	t.AddRow("nodes that can afford full membership",
		fmt.Sprintf("%.0f%%", 100*frac), "100% (levels adapt)")
	return t
}

// mcastTable measures the §4.2 multicast properties on a full-fidelity
// cluster: coverage, step counts, out-degrees. When spansFile is set,
// causal spans for the measured multicast are exported as JSONL for
// pwtrace.
func mcastTable(n int, seed uint64, spansFile string) *metrics.Table {
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256 // full fidelity: keep it small
	}
	c := sim.NewCluster(sim.ClusterConfig{Core: core.DefaultConfig(), Seed: seed})
	first := c.AddNode(1e9)
	c.Bootstrap(first)
	for i := 1; i < n; i++ {
		sn := c.AddNode(1e9)
		if err := c.Join(sn, c.RandomJoined(sn), des.Hour); err != nil {
			fmt.Fprintf(os.Stderr, "join %d failed: %v\n", i, err)
			os.Exit(1)
		}
		c.Run(30 * des.Second)
	}
	c.Run(2 * des.Minute)
	before := make(map[*sim.SimNode]uint64)
	for _, sn := range c.Alive() {
		sn.SentEvents = 0
		sn.MaxStep = 0
		before[sn] = sn.Delivered
	}
	evBefore := c.SentByType[wire.MsgEvent]
	var collector *sim.TraceCollector
	if spansFile != "" {
		collector = c.EnableSpanCollection(64 * n)
	}
	subject := c.Alive()[0]
	subject.Node.SetInfo([]byte("probe"))
	c.Run(2 * des.Minute)
	if collector != nil {
		f, err := os.Create(spansFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spans: %v\n", err)
			os.Exit(1)
		}
		werr := trace.WriteSpans(f, collector.Snapshot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "spans: %v\n", werr)
			os.Exit(1)
		}
	}

	delivered, maxStep := 0, 0
	var maxOut uint64
	zeroOut := 0
	for _, sn := range c.Alive() {
		if sn.Delivered > before[sn] {
			delivered++
		}
		if sn.MaxStep > maxStep {
			maxStep = sn.MaxStep
		}
		if sn.SentEvents > maxOut {
			maxOut = sn.SentEvents
		}
		if sn.SentEvents == 0 {
			zeroOut++
		}
	}
	t := metrics.NewTable(fmt.Sprintf("Multicast properties (§4.2), full fidelity, N=%d", n),
		"property", "value", "paper expectation")
	t.AddRow("audience reached", fmt.Sprintf("%d/%d", delivered, n-1), "all (property 3)")
	t.AddRow("event messages", c.SentByType[wire.MsgEvent]-evBefore, fmt.Sprintf("%d (r=1)", n-1))
	t.AddRow("max step", maxStep, "~log2 N")
	t.AddRow("root out-degree", maxOut, "~log2 N (property 2)")
	t.AddRow("zero-out-degree receivers", zeroOut, "many (leaves)")
	return t
}

// splitTable demonstrates §4.4: a system with no level-0 nodes operates
// as independent parts, each with its own top nodes, and events stay
// inside their part.
func splitTable(seed uint64) *metrics.Table {
	coreCfg := core.DefaultConfig()
	c := sim.NewCluster(sim.ClusterConfig{Core: coreCfg, Seed: seed})
	const n = 32
	type part struct {
		nodes []*sim.SimNode
	}
	var parts [2]part
	for i := 0; i < n; i++ {
		sn := c.AddNode(1e9)
		b := sn.Node.Self().ID.Bit(0)
		parts[b].nodes = append(parts[b].nodes, sn)
	}
	for b := range parts {
		members := parts[b].nodes
		var tops []wire.Pointer
		for i := 0; i < len(members) && i < coreCfg.TopListSize; i++ {
			self := members[i].Node.Self()
			self.Level = 1
			tops = append(tops, self)
		}
		for _, sn := range members {
			var peers []wire.Pointer
			for _, other := range members {
				if other != sn {
					self := other.Node.Self()
					self.Level = 1
					peers = append(peers, self)
				}
			}
			sn.Node.Restore(1, peers, tops)
		}
	}
	c.Run(2 * des.Minute)
	// An info change in part 0.
	before := map[*sim.SimNode]uint64{}
	for _, sn := range c.Alive() {
		before[sn] = sn.Delivered
	}
	parts[0].nodes[0].Node.SetInfo([]byte("part0"))
	c.Run(2 * des.Minute)
	informed := [2]int{}
	for b := range parts {
		for _, sn := range parts[b].nodes {
			if sn.Delivered > before[sn] {
				informed[b]++
			}
		}
	}
	t := metrics.NewTable(fmt.Sprintf("Split system (§4.4): two level-1 parts, N=%d", n),
		"property", "part 0*", "part 1*")
	t.AddRow("members", len(parts[0].nodes), len(parts[1].nodes))
	t.AddRow("informed by a part-0 event", informed[0], informed[1])
	t.AddRow("expected", fmt.Sprintf("%d (all but origin)", len(parts[0].nodes)-1), "0 (independent)")
	return t
}

func parseInts(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 1 {
			fmt.Fprintf(os.Stderr, "bad scale %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad rate %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
