package main

import (
	"strings"
	"testing"
)

func TestIntroTableContents(t *testing.T) {
	out := introTable().Render()
	for _, want := range []string{"99.58%", "833", "6000", "20.0", "tree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("intro table missing %q:\n%s", want, out)
		}
	}
}

func TestMcastTableProperties(t *testing.T) {
	out := mcastTable(24, 3, "").Render()
	for _, want := range []string{"audience reached", "23/23", "root out-degree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mcast table missing %q:\n%s", want, out)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	ints := parseInts("5000, 10000,20000")
	if len(ints) != 3 || ints[0] != 5000 || ints[2] != 20000 {
		t.Fatalf("parseInts = %v", ints)
	}
	floats := parseFloats("0.1, 1 ,10")
	if len(floats) != 3 || floats[0] != 0.1 || floats[2] != 10 {
		t.Fatalf("parseFloats = %v", floats)
	}
}
