// Command pwlive runs a live goroutine overlay: peers join, attach info,
// optionally churn, and the tool prints window sizes, levels and
// measured maintenance bandwidth as the system runs.
//
//	pwlive -peers 24 -duration 10m -dilation 120
//	pwlive -peers 16 -churn -crash 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"peerwindow"

	"peerwindow/internal/core"
	"peerwindow/internal/metrics"
	"peerwindow/internal/xrand"
)

func main() {
	var (
		peers    = flag.Int("peers", 16, "number of peers to spawn")
		duration = flag.Duration("duration", 8*time.Minute, "virtual run time")
		dilation = flag.Float64("dilation", 120, "virtual seconds per wall second")
		budget   = flag.Float64("budget", 1e6, "default collection budget (bit/s)")
		churn    = flag.Bool("churn", false, "replace a random peer periodically")
		traceCap = flag.Int("trace", 0, "keep a ring of the last N network events and dump them at exit")
		crash    = flag.Float64("crash", 0.5, "fraction of churn departures that crash silently")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *peers < 2 {
		fmt.Fprintln(os.Stderr, "need at least 2 peers")
		os.Exit(2)
	}

	opts := peerwindow.Defaults()
	opts.Dilation = *dilation
	opts.Budget = *budget
	opts.Seed = *seed
	opts.TraceCapacity = *traceCap
	ov, err := peerwindow.NewOverlay(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ov.Close()

	rng := xrand.New(*seed)
	for i := 0; i < *peers; i++ {
		name := fmt.Sprintf("peer-%03d", i)
		info := peerwindow.WithInfo([]byte(fmt.Sprintf("born=%d", i)))
		if _, err := ov.Spawn(name, info); err != nil {
			fmt.Fprintf(os.Stderr, "spawn %s: %v\n", name, err)
			os.Exit(1)
		}
		ov.Settle(15 * time.Second)
	}
	fmt.Printf("overlay up: %d peers\n", len(ov.Peers()))

	ticks := int(duration.Minutes())
	if ticks < 1 {
		ticks = 1
	}
	next := *peers
	for tick := 1; tick <= ticks; tick++ {
		ov.Settle(1 * time.Minute)
		if *churn && tick%2 == 0 {
			live := ov.Peers()
			if len(live) > 2 {
				victim := live[rng.Intn(len(live))]
				if rng.Float64() < *crash {
					fmt.Printf("  t=%dm churn: %s crashes\n", tick, victim.Name())
					victim.Crash()
				} else {
					fmt.Printf("  t=%dm churn: %s leaves\n", tick, victim.Name())
					victim.Leave()
				}
			}
			name := fmt.Sprintf("peer-%03d", next)
			next++
			if _, err := ov.Spawn(name, peerwindow.WithInfo([]byte("newcomer"))); err == nil {
				fmt.Printf("  t=%dm churn: %s joins\n", tick, name)
			} else {
				fmt.Printf("  t=%dm churn: %s failed to join: %v\n", tick, name, err)
			}
		}
		live := ov.Peers()
		minW, maxW, sumRate := 1<<30, 0, 0.0
		for _, p := range live {
			w := p.View().Len()
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
			sumRate += p.InputRate()
		}
		fmt.Printf("t=%dm: %d peers, window sizes [%d..%d], mean maintenance %.0f bit/s\n",
			tick, len(live), minW, maxW, sumRate/float64(len(live)))
	}

	fmt.Println("\nfinal state:")
	for _, p := range ov.Peers() {
		fmt.Printf("  %-10s level=%d window=%3d in=%.0f bit/s\n",
			p.Name(), p.Level(), p.View().Len(), p.InputRate())
	}
	m := ov.Metrics()
	var msgs, bits, dropped uint64
	for name, v := range m.Counters {
		switch {
		case strings.HasPrefix(name, metrics.MetricNetSendBitsPrefix):
			bits += v
		case strings.HasPrefix(name, metrics.MetricNetSendPrefix):
			msgs += v
		case strings.HasPrefix(name, metrics.MetricNetDropPrefix):
			dropped += v
		}
	}
	fmt.Printf("\ntraffic: %d messages, %.1f kbit total, %d dropped\n",
		msgs, float64(bits)/1000, dropped)
	fmt.Printf("protocol: %d multicasts originated, %d deliveries, %d ack retries, %d probe failures\n",
		m.Counter(core.MetricMulticastOriginated), m.Counter(core.MetricMulticastDelivered),
		m.Counter(core.MetricAckRetries), m.Counter(core.MetricProbeFailures))
	if *traceCap > 0 {
		fmt.Println("\nlast network events:")
		if _, err := ov.DumpTrace(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "trace dump:", err)
		}
	}
}
