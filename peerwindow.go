// Package peerwindow implements PeerWindow, the efficient, heterogeneous
// and autonomic node-collection protocol of Hu, Li, Yu, Dong and Zheng
// (ICPP 2005).
//
// Every peer keeps a large "window" of pointers to other peers — each
// pointer carrying the remote peer's address, 128-bit identifier, level,
// and a slice of application-attached info — maintained by multicast
// rather than probing, so that collecting 1000 pointers costs well under
// 1 kbit/s in a typical deployment. Peers pick how much bandwidth to
// spend (heterogeneity) and adjust their level — and therefore their
// window size, about N/2^level pointers — on their own as conditions
// change (autonomy).
//
// The package front-ends the protocol engine in internal/core with an
// in-process overlay: peers run as goroutines connected by a simulated
// network with transit-stub latencies. Applications use it the way §3 of
// the paper sketches — attach info to your pointer, read other peers'
// windows, and select partners locally:
//
//	ov, _ := peerwindow.NewOverlay(peerwindow.Defaults())
//	defer ov.Close()
//	alice, _ := ov.Spawn("alice")
//	bob, _ := ov.Spawn("bob", peerwindow.WithInfo([]byte("os=linux")))
//	...
//	linuxen := alice.View().InfoContains("os=linux")
//
// View returns an immutable, indexed snapshot (see docs/QUERY.md);
// Subscribe delivers window changes as they happen instead of polling.
package peerwindow

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"peerwindow/internal/core"
	"peerwindow/internal/des"
	"peerwindow/internal/metrics"
	"peerwindow/internal/query"
	"peerwindow/internal/topology"
	"peerwindow/internal/trace"
	"peerwindow/internal/transport"
	"peerwindow/internal/wire"
	"peerwindow/internal/xrand"
)

// Options configures an Overlay. Zero value is not usable; start from
// Defaults.
type Options struct {
	// TopListSize is t, the number of top-node pointers each peer keeps
	// (paper: 8).
	TopListSize int
	// ProbeInterval and ProbeTimeout drive ring failure detection.
	ProbeInterval, ProbeTimeout time.Duration
	// AckTimeout and RetryAttempts drive multicast reliability (paper: 3
	// attempts).
	AckTimeout    time.Duration
	RetryAttempts int
	// ForwardDelay is the per-hop processing cost of the multicast.
	ForwardDelay time.Duration
	// Budget is the default bandwidth each peer spends on collection
	// (bit/s); Spawn can override per peer.
	Budget float64
	// MaxLevel bounds how weak a peer may become.
	MaxLevel int
	// Refresh enables the anti-entropy mechanism of §4.6.
	Refresh bool
	// Gossip switches event dissemination from the §4.2 tree to the §2
	// level-gossip variant — more robust, roughly fanout× the bandwidth.
	Gossip bool
	// WarmUp makes joining peers start small and grow in the background
	// (§4.3).
	WarmUp bool

	// TransitStub, when true, draws latencies from a generated
	// transit-stub topology (the paper's network model); otherwise
	// Latency applies uniformly.
	TransitStub bool
	// Latency is the flat one-way latency without TransitStub.
	Latency time.Duration
	// Dilation compresses time: virtual seconds per wall second. 1 runs
	// in real time; 60 runs a virtual minute per second. Demos use high
	// values; keep AckTimeout/Dilation well above ~5 ms of wall time.
	Dilation float64
	// LossRate drops messages with this probability (fault injection).
	LossRate float64
	// TraceCapacity, when positive, keeps a ring of the last N network
	// events (sends, drops, deliveries); dump it with DumpTrace.
	TraceCapacity int
	// Seed makes identifier assignment and latencies reproducible.
	Seed uint64
}

// Defaults returns the paper-faithful configuration running at 60×
// compressed time.
func Defaults() Options {
	return Options{
		TopListSize:   8,
		ProbeInterval: 30 * time.Second,
		ProbeTimeout:  5 * time.Second,
		AckTimeout:    3 * time.Second,
		RetryAttempts: 3,
		ForwardDelay:  1 * time.Second,
		Budget:        5000,
		MaxLevel:      30,
		Refresh:       true,
		WarmUp:        false,
		TransitStub:   false,
		Latency:       50 * time.Millisecond,
		Dilation:      60,
		Seed:          1,
	}
}

// minWallAckTimeout is the smallest wall-clock ack timeout Validate
// accepts. Below roughly a millisecond of real time, goroutine
// scheduling jitter alone exceeds the timeout and every send looks
// lost.
const minWallAckTimeout = time.Millisecond

// Validate reports whether the options describe a runnable overlay.
// Beyond the per-field range checks it rejects combinations that are
// individually legal but cannot work together — most importantly an
// AckTimeout that, after Dilation compresses it onto the wall clock,
// falls below the scheduler's resolution (AckTimeout/Dilation under
// about 1 ms of wall time): timers would fire before the network
// round-trip completes and the overlay would retry itself to death.
func (o Options) Validate() error {
	switch {
	case o.Dilation < 0:
		return fmt.Errorf("peerwindow: Dilation = %g (must be >= 0; 0 means real time)", o.Dilation)
	case o.Latency < 0:
		return fmt.Errorf("peerwindow: Latency = %v", o.Latency)
	case o.LossRate < 0 || o.LossRate >= 1:
		return fmt.Errorf("peerwindow: LossRate = %g (need 0 <= rate < 1)", o.LossRate)
	case o.TraceCapacity < 0:
		return fmt.Errorf("peerwindow: TraceCapacity = %d", o.TraceCapacity)
	}
	if dil := o.Dilation; dil > 1 {
		if wall := time.Duration(float64(o.AckTimeout) / dil); wall < minWallAckTimeout {
			return fmt.Errorf("peerwindow: AckTimeout %v / Dilation %g = %v of wall time, below the %v scheduler floor",
				o.AckTimeout, dil, wall, minWallAckTimeout)
		}
		if wall := time.Duration(float64(o.ProbeTimeout) / dil); wall < minWallAckTimeout {
			return fmt.Errorf("peerwindow: ProbeTimeout %v / Dilation %g = %v of wall time, below the %v scheduler floor",
				o.ProbeTimeout, dil, wall, minWallAckTimeout)
		}
	}
	if err := o.toCore().Validate(); err != nil {
		return fmt.Errorf("peerwindow: %w", err)
	}
	return nil
}

// toCore translates the public options into the engine configuration.
func (o Options) toCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.TopListSize = o.TopListSize
	cfg.ProbeInterval = des.Time(o.ProbeInterval)
	cfg.ProbeTimeout = des.Time(o.ProbeTimeout)
	cfg.AckTimeout = des.Time(o.AckTimeout)
	cfg.RetryAttempts = o.RetryAttempts
	cfg.ForwardDelay = des.Time(o.ForwardDelay)
	cfg.ThresholdBits = o.Budget
	cfg.MaxLevel = o.MaxLevel
	cfg.RefreshEnabled = o.Refresh
	cfg.GossipMulticast = o.Gossip
	cfg.WarmUp = o.WarmUp
	return cfg
}

// Overlay is an in-process PeerWindow network.
type Overlay struct {
	net      *transport.Network
	dilation float64
	ring     *trace.Ring

	mu    sync.Mutex
	peers map[string]*Peer
	order []*Peer // spawn order, for bootstrap selection
	rng   *xrand.Source
}

// New builds an overlay, panicking on invalid options.
//
// Deprecated: use NewOverlay, which validates the options and returns
// an error instead of panicking.
func New(o Options) *Overlay {
	ov, err := NewOverlay(o)
	if err != nil {
		panic(err)
	}
	return ov
}

// NewOverlay validates o (see Options.Validate) and builds an overlay.
func NewOverlay(o Options) (*Overlay, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	var topo *topology.Network
	rng := xrand.New(o.Seed)
	if o.TransitStub {
		topo = topology.Generate(topology.DefaultParams(), rng.Split(1))
	}
	var ring *trace.Ring
	if o.TraceCapacity > 0 {
		ring = trace.NewRing(o.TraceCapacity)
	}
	net := transport.NewNetwork(transport.NetworkConfig{
		Core:         o.toCore(),
		Topology:     topo,
		ConstLatency: des.Time(o.Latency),
		Dilation:     o.Dilation,
		LossRate:     o.LossRate,
		Seed:         o.Seed,
		Trace:        ring,
	})
	dil := o.Dilation
	if dil < 1 {
		dil = 1
	}
	return &Overlay{
		net:      net,
		dilation: dil,
		ring:     ring,
		peers:    make(map[string]*Peer),
		rng:      rng.Split(2),
	}, nil
}

// DumpTrace writes the retained network trace (if Options.TraceCapacity
// was set) to w and returns how many events were ever recorded.
func (o *Overlay) DumpTrace(w io.Writer) (uint64, error) {
	if o.ring == nil {
		return 0, nil
	}
	return o.ring.Total(), o.ring.Dump(w)
}

// Close stops every peer and the overlay.
func (o *Overlay) Close() { o.net.Close() }

// ErrDuplicateName reports a Spawn with a name already in use.
var ErrDuplicateName = errors.New("peerwindow: peer name already in use")

// Change notifies a Watcher about one window mutation.
type Change struct {
	// Added is true for a new pointer, false for a removal.
	Added bool
	// Pointer is the affected entry.
	Pointer Pointer
	// Reason classifies removals: "leave", "stale", "expired" or
	// "shift"; empty for additions.
	Reason string
}

// Watcher receives window changes. Calls arrive on the peer's internal
// executor: return quickly and do not call Peer/Overlay methods from
// inside (hand work to your own goroutine instead).
type Watcher func(Change)

// SpawnOption customizes one Spawn call. Options compose; later ones
// win on conflict.
type SpawnOption func(*spawnConfig)

// spawnConfig collects the effects of SpawnOptions.
type spawnConfig struct {
	budget  float64
	watcher Watcher
	info    []byte
}

// WithBudget sets the peer's collection budget in bit/s — the
// heterogeneity knob of §2. Zero or negative keeps the overlay's
// default.
func WithBudget(bitsPerSec float64) SpawnOption {
	return func(c *spawnConfig) { c.budget = bitsPerSec }
}

// WithWatcher registers a Watcher for the peer's window changes.
//
// Deprecated: use Peer.Subscribe, which adds update events, epoch
// alignment with View snapshots, and bounded buffering with drop
// accounting instead of synchronous callbacks on the protocol path.
func WithWatcher(w Watcher) SpawnOption {
	return func(c *spawnConfig) { c.watcher = w }
}

// WithInfo attaches application info to the peer's pointer before it
// joins, so every window that ever holds the pointer sees the info from
// the start (§3). At most MaxInfoLen bytes.
func WithInfo(info []byte) SpawnOption {
	return func(c *spawnConfig) { c.info = append([]byte(nil), info...) }
}

// Spawn starts a peer. The first peer bootstraps a fresh overlay; later
// peers join through a random live peer (the §4.3 process). It blocks
// until the join completes. Options tune the peer:
//
//	ov.Spawn("alice", peerwindow.WithBudget(20000), peerwindow.WithInfo([]byte("os=linux")))
func (o *Overlay) Spawn(name string, opts ...SpawnOption) (*Peer, error) {
	var c spawnConfig
	for _, opt := range opts {
		opt(&c)
	}
	return o.spawn(name, c)
}

// SpawnBudget is Spawn with an explicit collection budget in bit/s.
//
// Deprecated: use Spawn with WithBudget.
func (o *Overlay) SpawnBudget(name string, budget float64) (*Peer, error) {
	return o.Spawn(name, WithBudget(budget))
}

// SpawnWatched is Spawn with a budget and a Watcher for window changes.
//
// Deprecated: use Spawn with WithBudget and WithWatcher.
func (o *Overlay) SpawnWatched(name string, budget float64, w Watcher) (*Peer, error) {
	return o.Spawn(name, WithBudget(budget), WithWatcher(w))
}

func (o *Overlay) spawn(name string, c spawnConfig) (*Peer, error) {
	if len(c.info) > MaxInfoLen {
		return nil, fmt.Errorf("peerwindow: %q: info %d bytes exceeds %d", name, len(c.info), MaxInfoLen)
	}
	o.mu.Lock()
	if _, dup := o.peers[name]; dup {
		o.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	var boot *Peer
	if len(o.order) > 0 {
		// Random live bootstrap.
		alive := make([]*Peer, 0, len(o.order))
		for _, p := range o.order {
			if !p.gone {
				alive = append(alive, p)
			}
		}
		if len(alive) > 0 {
			boot = alive[o.rng.Intn(len(alive))]
		}
	}
	o.mu.Unlock()

	var obs core.Observer
	if w := c.watcher; w != nil {
		obs = core.Observer{
			PeerAdded: func(q wire.Pointer) {
				w(Change{Added: true, Pointer: toPublic(q)})
			},
			PeerRemoved: func(q wire.Pointer, reason core.RemoveReason) {
				w(Change{Pointer: toPublic(q), Reason: reason.String()})
			},
		}
	}
	h := o.net.SpawnObserved(name, c.budget, obs)
	if len(c.info) > 0 {
		// Before Bootstrap/Join, so the pointer carries the info from its
		// first announcement on.
		h.SetInfo(c.info)
	}
	p := &Peer{name: name, host: h, overlay: o}
	if boot == nil {
		h.Bootstrap()
	} else if err := h.Join(boot.host.Self()); err != nil {
		h.Shutdown()
		return nil, fmt.Errorf("peerwindow: %q could not join: %w", name, err)
	}
	o.mu.Lock()
	o.peers[name] = p
	o.order = append(o.order, p)
	o.mu.Unlock()
	return p, nil
}

// Peer returns a spawned peer by name.
func (o *Overlay) Peer(name string) (*Peer, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.peers[name]
	return p, ok
}

// Peers returns all live peers in spawn order.
func (o *Overlay) Peers() []*Peer {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Peer, 0, len(o.order))
	for _, p := range o.order {
		if !p.gone {
			out = append(out, p)
		}
	}
	return out
}

// Stats reports the overlay's traffic totals: messages and bits offered
// to the network, losses injected, and the live peer count.
//
// Deprecated: use Overlay.Metrics, which carries the same totals broken
// down per message type plus the full protocol instrument set.
type Stats struct {
	Messages uint64
	Bits     uint64
	Dropped  uint64
	Peers    int
}

// Stats returns a snapshot of the overlay's traffic counters.
//
// Deprecated: use Overlay.Metrics.
func (o *Overlay) Stats() Stats {
	s := o.net.Stats()
	return Stats{Messages: s.Messages, Bits: s.Bits, Dropped: s.Dropped, Peers: s.Hosts}
}

// Histogram is one latency/size distribution inside a MetricsSnapshot.
type Histogram struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// entry for observations above the last bound.
	Bounds []float64
	Counts []uint64
	// Count and Sum cover every observation, including overflows.
	Count uint64
	Sum   float64
}

// Mean returns the average observed value, or 0 with no observations.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// MetricsSnapshot is a point-in-time view of named instruments: counter
// totals, gauge values, and histograms. Names are dotted and stable —
// docs/OBSERVABILITY.md lists them all with their semantics.
type MetricsSnapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]Histogram
}

// Counter returns a counter's value (0 when absent).
func (m MetricsSnapshot) Counter(name string) uint64 { return m.Counters[name] }

// Gauge returns a gauge's value (0 when absent).
func (m MetricsSnapshot) Gauge(name string) int64 { return m.Gauges[name] }

// toPublicMetrics converts the internal snapshot form.
func toPublicMetrics(s metrics.Snapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]Histogram, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = Histogram{
			Bounds: h.Bounds,
			Counts: h.Counts,
			Count:  h.Count,
			Sum:    h.Sum,
		}
	}
	return out
}

// Metrics returns the overlay-wide instrument snapshot: the network's
// per-message-type send/recv/drop counts and bits, merged with the sum
// of every live peer's protocol instruments. Counters and histogram
// buckets add across peers; gauges add too (so peer.window_size is the
// total pointer count held across the overlay).
func (o *Overlay) Metrics() MetricsSnapshot {
	s := o.net.Metrics()
	for _, p := range o.Peers() {
		s.Merge(p.host.MetricsSnapshot())
	}
	return toPublicMetrics(s)
}

// Settle sleeps for the given virtual duration — convenience for demos
// that need multicasts to propagate.
func (o *Overlay) Settle(virtual time.Duration) {
	time.Sleep(time.Duration(float64(virtual)/o.dilation) + 5*time.Millisecond)
}

// Peer is one live PeerWindow participant.
type Peer struct {
	name    string
	host    *transport.Host
	overlay *Overlay
	gone    bool
}

// Name returns the peer's spawn name.
func (p *Peer) Name() string { return p.name }

// ID returns the peer's 128-bit identifier as 32 hex digits.
func (p *Peer) ID() string { return p.host.Self().ID.String() }

// Level returns the peer's current level; its window holds about
// N/2^level pointers.
func (p *Peer) Level() int { return p.host.Level() }

// InputRate returns the measured maintenance bandwidth in bit/s of
// virtual time.
func (p *Peer) InputRate() float64 { return p.host.InputRate() }

// Metrics returns this peer's protocol instrument snapshot: multicast
// fan-out and delivery counters, ack retries, probe rounds and the
// failure-detection latency histogram, level shifts, refresh activity,
// and the peer.* gauges (level, window size, measured rates). Names and
// semantics are listed in docs/OBSERVABILITY.md.
func (p *Peer) Metrics() MetricsSnapshot {
	return toPublicMetrics(p.host.MetricsSnapshot())
}

// SetInfo attaches application info to the peer's pointer and announces
// the change to every window holding it (§3). Info must be at most 255
// bytes — the paper insists pointers stay small.
func (p *Peer) SetInfo(info []byte) { p.host.SetInfo(info) }

// SetBudget changes the peer's collection budget at runtime (§2
// autonomy).
func (p *Peer) SetBudget(bitsPerSec float64) { p.host.SetThreshold(bitsPerSec) }

// Leave departs politely, announcing the leave.
func (p *Peer) Leave() {
	p.markGone()
	p.host.Leave()
}

// Crash stops the peer silently; ring probing will detect it.
func (p *Peer) Crash() {
	p.markGone()
	p.host.Shutdown()
}

func (p *Peer) markGone() {
	p.overlay.mu.Lock()
	p.gone = true
	delete(p.overlay.peers, p.name)
	p.overlay.mu.Unlock()
}

// Pointer is one entry of a peer's window: a piece of information about
// another node (§2).
type Pointer struct {
	// ID is the node's identifier in hex.
	ID string
	// Addr is its (opaque) network address.
	Addr uint64
	// Level is the node's announced level; smaller is stronger, and
	// stronger correlates with longer uptime and more resources (§3).
	Level int
	// Info is the application-attached payload.
	Info []byte
}

// Window is a snapshot of collected pointers with the §3 selection
// helpers.
type Window []Pointer

// toPublic converts a wire pointer into the public form.
func toPublic(q wire.Pointer) Pointer {
	return Pointer{
		ID:    q.ID.String(),
		Addr:  uint64(q.Addr),
		Level: int(q.Level),
		Info:  append([]byte(nil), q.Info...),
	}
}

// Window returns the peer's current window snapshot, materialized as a
// flat copy in ascending ID order.
//
// Deprecated: Window copies all N pointers on every call and its helpers
// scan them linearly. Use View, which snapshots the same window without
// copying and answers Lookup/Strongest/InfoContains/WithField through
// incremental indexes; Window() is now View().Window().
func (p *Peer) Window() Window {
	return p.View().Window()
}

// Filter keeps pointers satisfying pred.
func (w Window) Filter(pred func(Pointer) bool) Window {
	out := make(Window, 0, len(w))
	for _, p := range w {
		if pred(p) {
			out = append(out, p)
		}
	}
	return out
}

// ByInfo keeps pointers whose attached info satisfies pred — "directly
// using the attached info" (§3).
func (w Window) ByInfo(pred func(info []byte) bool) Window {
	return w.Filter(func(p Pointer) bool { return pred(p.Info) })
}

// InfoContains keeps pointers whose info contains the substring — the
// most common ByInfo shorthand.
func (w Window) InfoContains(substr string) Window {
	return w.ByInfo(func(b []byte) bool { return strings.Contains(string(b), substr) })
}

// Strongest returns up to k pointers with the smallest level values —
// "looking at the level value for powerful nodes" (§3) — ordered by
// ascending level, original window order within a level (exactly the
// prefix a stable sort by level would produce). A bounded k-element
// selection keeps the cost at O(n·log k) time and O(k) space instead of
// copying and sorting the whole window.
func (w Window) Strongest(k int) Window {
	if k >= len(w) {
		out := append(Window(nil), w...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].Level < out[j].Level })
		return out
	}
	if k <= 0 {
		return Window{}
	}
	// Max-heap on (level, index): the root is the worst kept candidate,
	// evicted whenever a strictly better pointer appears.
	type cand struct{ level, idx int }
	h := make([]cand, 0, k)
	worse := func(a, b cand) bool {
		if a.level != b.level {
			return a.level > b.level
		}
		return a.idx > b.idx
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h[i], h[p]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	down := func(i int) {
		for {
			l, r, m := 2*i+1, 2*i+2, i
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worse(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := range w {
		c := cand{level: w[i].Level, idx: i}
		if len(h) < k {
			h = append(h, c)
			up(len(h) - 1)
		} else if worse(h[0], c) {
			h[0] = c
			down(0)
		}
	}
	sort.Slice(h, func(i, j int) bool {
		if h[i].level != h[j].level {
			return h[i].level < h[j].level
		}
		return h[i].idx < h[j].idx
	})
	out := make(Window, len(h))
	for i, c := range h {
		out[i] = w[c.idx]
	}
	return out
}

// Sample returns up to k uniformly random pointers, reproducible from
// seed. A partial Fisher–Yates shuffle draws only k values from the
// generator (the old implementation permuted the entire window), so
// sampling a handful of peers from a large window is O(k); on the same
// snapshot, View.Sample selects exactly the same peers.
func (w Window) Sample(k int, seed uint64) Window {
	if k >= len(w) {
		return append(Window(nil), w...)
	}
	idx := query.SampleIndexes(len(w), k, seed)
	out := make(Window, 0, k)
	for _, i := range idx {
		out = append(out, w[i])
	}
	return out
}

// MaxInfoLen is the largest attached-info payload a pointer may carry
// (§3 keeps pointers small so windows stay large).
const MaxInfoLen = wire.MaxInfoLen
