// Tool dependencies only (see tools.go). The main go.mod stays
// dependency-free; CI materializes go.tools.sum with
// `go mod tidy -modfile=go.tools.mod` before running the tools.
module peerwindow

go 1.22

require (
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.4.7 // staticcheck 2024.1.1
)
