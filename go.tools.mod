// Tool dependencies only (see tools.go). The main go.mod stays
// dependency-free; CI materializes go.tools.sum with
// `go mod tidy -modfile=go.tools.mod` before running the tools.
module peerwindow

go 1.22

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.5.1 // staticcheck 2024.1.1 lineage, go1.23-aware
)
